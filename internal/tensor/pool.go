package tensor

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// The matrix kernels in this package fan row-panels of their output across a
// shared worker pool sized to GOMAXPROCS. Each panel is an independent set of
// output rows, so the parallel decomposition reproduces the serial kernel's
// floating-point accumulation order exactly: parallel and serial runs are
// bitwise identical.
//
// Setting GOLDFISH_SERIAL=1 in the environment disables the pool entirely
// (every kernel runs on the calling goroutine), which is useful when
// debugging with a deterministic single-threaded schedule or when profiling
// the kernels themselves.

// serialMode is read by every kernel dispatch; initialized from the
// environment, overridable via ForceSerial.
var serialMode atomic.Bool

func init() {
	if os.Getenv("GOLDFISH_SERIAL") == "1" {
		serialMode.Store(true)
	}
}

// ForceSerial toggles serial kernel execution at runtime (the programmatic
// equivalent of GOLDFISH_SERIAL=1) and returns the previous setting. It is
// used by benchmarks and parity tests to compare the two execution modes
// within one process.
func ForceSerial(v bool) bool { return serialMode.Swap(v) }

// SerialMode reports whether kernels currently run single-threaded.
func SerialMode() bool { return serialMode.Load() }

// panelTask is one contiguous range of output rows handed to a pool worker.
type panelTask struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan panelTask
	poolSize int
)

// ensurePool lazily starts the GOMAXPROCS-sized worker pool. Workers live
// for the life of the process; an idle pool costs only blocked goroutines.
//
//goldfish:coldpath — one-time pool construction behind sync.Once
func ensurePool() {
	poolOnce.Do(func() { //goldfish:coldpath — one-time pool construction behind sync.Once
		poolSize = runtime.GOMAXPROCS(0)
		poolCh = make(chan panelTask, 4*poolSize)
		for i := 0; i < poolSize; i++ {
			go func() {
				for t := range poolCh {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// parallelThreshold is the approximate flop count below which forking to the
// pool costs more than it saves and the kernel runs on the caller.
const parallelThreshold = 64 * 1024

// parallelRows runs fn over [0, n) split into contiguous row panels across
// the worker pool. work estimates the total flop count of the call; small
// problems run serially on the caller. The caller executes the final panel
// itself, so the pool is never a hard dependency for progress.
func parallelRows(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if serialMode.Load() || n == 1 || work < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		fn(0, n)
		return
	}
	ensurePool()
	// Mild oversubscription smooths panels of uneven cost.
	chunks := 2 * poolSize
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	lo := 0
	for lo+size < n {
		wg.Add(1)
		poolCh <- panelTask{lo: lo, hi: lo + size, fn: fn, wg: &wg}
		lo += size
	}
	fn(lo, n)
	wg.Wait()
}
