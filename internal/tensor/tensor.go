// Package tensor provides a small dense float64 tensor used as the numeric
// substrate for the neural-network stack. It supports the operations needed
// by manual backpropagation: elementwise arithmetic, 2-D matrix products,
// row-wise softmax and reductions.
//
// Shape mismatches are programmer errors and panic with a descriptive
// message, mirroring the convention of numeric kernels (e.g. gonum). All
// other failure modes return errors.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an empty
// tensor; use New or FromSlice to construct a usable one.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative or if the shape is empty.
//
// New is the module's designated allocator: hotpathalloc treats it as a cut
// (its internals are expected to allocate) and flags hot call sites instead.
//
//goldfish:coldpath
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); callers that need isolation should pass a copy.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// EnsureShape returns a tensor with exactly the given shape, reusing t's
// backing storage when it is large enough and allocating otherwise (t may be
// nil). The contents are unspecified after the call: callers own the returned
// tensor and must fully overwrite or Zero it. This is the allocation-reuse
// primitive behind the layer scratch buffers in package nn.
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	n := checkShape(shape)
	if t == nil || cap(t.data) < n {
		return New(shape...) //goldfish:allocok — the grow path; steady state reuses t
	}
	t.data = t.data[:n]
	t.shape = append(t.shape[:0], shape...) //goldfish:allocok — grows only on rank change
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) } //goldfish:allocok — defensive copy by contract

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; this is
// deliberate and heavily used by the compute kernels.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
//
//goldfish:coldpath
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// Reshape returns a view of the same data with a new shape. The element
// count must match. One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := append([]int(nil), shape...) //goldfish:allocok — view header only; data is shared
	infer := -1
	known := 1
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape allows at most one -1 dimension")
			}
			infer = i
			continue
		}
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[infer] = len(t.data) / known
		known *= out[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, known))
	}
	return &Tensor{shape: out, data: t.data} //goldfish:allocok — view header only; data is shared
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Zero sets every element to 0 and returns t.
func (t *Tensor) Zero() *Tensor { return t.Fill(0) }

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// RandNormal fills the tensor with N(mean, std²) samples from rng and
// returns t.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = rng.NormFloat64()*std + mean
	}
	return t
}

// RandUniform fills the tensor with U[lo, hi) samples from rng and returns t.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor(")
	for i, d := range t.shape {
		if i > 0 {
			b.WriteByte('x')
		}
		b.WriteString(strconv.Itoa(d))
	}
	b.WriteString(")[")
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}

// AddInPlace adds o elementwise into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace subtracts o elementwise from t and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "SubInPlace")
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// MulInPlace multiplies t elementwise by o (Hadamard) and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "MulInPlace")
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AXPY adds a*x into t (t += a*x) and returns t.
func (t *Tensor) AXPY(a float64, x *Tensor) *Tensor {
	t.mustSameShape(x, "AXPY")
	for i, v := range x.data {
		t.data[i] += a * v
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t − o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the Hadamard product t ⊙ o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s·t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor { return t.Clone().ScaleInPlace(s) }

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameShape(o, "Dot")
	var s float64
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_i |t_i − o_i|.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	t.mustSameShape(o, "MaxAbsDiff")
	var m float64
	for i, v := range t.data {
		d := math.Abs(v - o.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// ApproxEqual reports whether all elements differ by at most tol.
func (t *Tensor) ApproxEqual(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	return t.MaxAbsDiff(o) <= tol
}
