package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %g, want 1", got)
	}
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %g, want 6", got)
	}
	x.Set(9, 1, 0)
	if got := x.At(1, 0); got != 9 {
		t.Errorf("after Set, At(1,0) = %g, want 9", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %g, want 6", y.At(2, 1))
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Errorf("inferred dim = %d, want 3", z.Dim(0))
	}
	// Views share data.
	y.Data()[0] = 42
	if x.Data()[0] != 42 {
		t.Error("Reshape should share data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	c := a.Clone()
	c.AXPY(2, b)
	if c.Data()[0] != 9 {
		t.Errorf("AXPY = %v", c.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	New(2).AddInPlace(New(3))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 2, -3, 4}, 4)
	if got := x.Sum(); got != 2 {
		t.Errorf("Sum = %g, want 2", got)
	}
	if got := x.Mean(); got != 0.5 {
		t.Errorf("Mean = %g, want 0.5", got)
	}
	if got := x.Max(); got != 4 {
		t.Errorf("Max = %g, want 4", got)
	}
	if got := x.L2Norm(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("L2Norm = %g, want sqrt(30)", got)
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data()[i], w)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(3, 4).RandNormal(rng, 0, 1)
	b := New(5, 4).RandNormal(rng, 0, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose2D(b))
	if !got.ApproxEqual(want, 1e-12) {
		t.Error("MatMulTransB disagrees with MatMul(a, bᵀ)")
	}
	c := New(4, 3).RandNormal(rng, 0, 1)
	d := New(4, 5).RandNormal(rng, 0, 1)
	got2 := MatMulTransA(c, d)
	want2 := MatMul(Transpose2D(c), d)
	if !got2.ApproxEqual(want2, 1e-12) {
		t.Error("MatMulTransA disagrees with MatMul(cᵀ, d)")
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Transpose2D(a)
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("Transpose shape = %v", b.Shape())
	}
	if b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Errorf("Transpose values wrong: %v", b.Data())
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(5, 7).RandNormal(rng, 0, 3)
	for _, temp := range []float64{0.5, 1, 3} {
		p := SoftmaxRows(x, temp)
		for i := 0; i < 5; i++ {
			var s float64
			for _, v := range p.Row(i) {
				if v < 0 || v > 1 {
					t.Fatalf("softmax prob out of [0,1]: %g", v)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-12 {
				t.Fatalf("softmax row %d sums to %g", i, s)
			}
		}
	}
}

func TestSoftmaxTemperatureSmooths(t *testing.T) {
	x := FromSlice([]float64{3, 0, -1}, 1, 3)
	sharp := SoftmaxRows(x, 0.5)
	smooth := SoftmaxRows(x, 5)
	if !(sharp.At(0, 0) > smooth.At(0, 0)) {
		t.Errorf("higher temperature should flatten the max: sharp=%g smooth=%g",
			sharp.At(0, 0), smooth.At(0, 0))
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := FromSlice([]float64{1000, 999, -1000}, 1, 3)
	p := SoftmaxRows(x, 1)
	for _, v := range p.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax produced %g on extreme logits", v)
		}
	}
	if p.At(0, 0) <= p.At(0, 1) {
		t.Error("ordering lost after stabilization")
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := New(4, 6).RandNormal(rng, 0, 2)
	ls := LogSoftmaxRows(x)
	p := SoftmaxRows(x, 1)
	for i, v := range ls.Data() {
		if math.Abs(math.Exp(v)-p.Data()[i]) > 1e-10 {
			t.Fatalf("exp(logsoftmax) != softmax at %d: %g vs %g", i, math.Exp(v), p.Data()[i])
		}
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRows(x)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgMaxRows = %v, want [1 0]", got)
	}
}

func TestSumRows(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumRows(x)
	want := []float64{5, 7, 9}
	for i, w := range want {
		if s.Data()[i] != w {
			t.Errorf("SumRows[%d] = %g, want %g", i, s.Data()[i], w)
		}
	}
}

func TestSliceRows(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	y := SliceRows(x, []int{2, 0, 2})
	want := []float64{5, 6, 1, 2, 5, 6}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("SliceRows data[%d] = %g, want %g", i, y.Data()[i], w)
		}
	}
	// Must be a copy.
	y.Data()[0] = -1
	if x.At(2, 0) != 5 {
		t.Error("SliceRows must copy data")
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	c := Concat(a, b)
	if c.Dim(0) != 3 || c.Dim(1) != 2 {
		t.Fatalf("Concat shape = %v", c.Shape())
	}
	if c.At(2, 1) != 6 {
		t.Errorf("Concat At(2,1) = %g, want 6", c.At(2, 1))
	}
}

func TestRandNormalDeterministic(t *testing.T) {
	a := New(10).RandNormal(rand.New(rand.NewSource(7)), 0, 1)
	b := New(10).RandNormal(rand.New(rand.NewSource(7)), 0, 1)
	if !a.ApproxEqual(b, 0) {
		t.Error("same seed must give identical samples")
	}
}

// Property: (a+b)−b == a elementwise (exact for float addition then
// subtraction is not exact in general, so allow tiny tolerance).
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				v = 1
			}
			vals = append(vals, v)
		}
		a := FromSlice(append([]float64(nil), vals...), len(vals))
		b := a.Scale(0.5)
		got := a.Add(b).Sub(b)
		return got.ApproxEqual(a, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) == AB + AC.
func TestQuickMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := New(m, k).RandNormal(rng, 0, 1)
		b := New(k, n).RandNormal(rng, 0, 1)
		c := New(k, n).RandNormal(rng, 0, 1)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.ApproxEqual(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: softmax is invariant to adding a constant to all logits.
func TestQuickSoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			shift = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		x := New(2, 5).RandNormal(rng, 0, 2)
		y := x.Clone()
		for i := range y.Data() {
			y.Data()[i] += shift
		}
		return SoftmaxRows(x, 1).ApproxEqual(SoftmaxRows(y, 1), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringTruncates(t *testing.T) {
	s := New(3, 4).Fill(1.5).String()
	if !strings.Contains(s, "Tensor(3x4)") || !strings.Contains(s, "...") {
		t.Errorf("String = %q", s)
	}
	short := FromSlice([]float64{1}, 1).String()
	if strings.Contains(short, "...") {
		t.Errorf("short tensor should not truncate: %q", short)
	}
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max of empty tensor should panic")
		}
	}()
	New(0).Max()
}

func TestMatMulShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(4, 2)) },         // inner mismatch
		func() { MatMul(New(2), New(2, 2)) },            // 1-D operand
		func() { MatMulTransB(New(2, 3), New(2, 4)) },   // inner mismatch
		func() { MatMulTransA(New(2, 3), New(3, 4)) },   // inner mismatch
		func() { Transpose2D(New(2, 2, 2)) },            // 3-D operand
		func() { SoftmaxRows(New(2, 2), 0) },            // zero temperature
		func() { New(2, 2).Row(0); ArgMaxRows(New(2)) }, // 1-D argmax
		func() { SumRows(New(3)) },                      // 1-D sums
		func() { SliceRows(New(3, 2), []int{5}) },       // out of range
		func() { Concat(New(2, 3), New(2, 4)) },         // trailing mismatch
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCopyFromAndZero(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := New(3)
	b.CopyFrom(a)
	if !b.ApproxEqual(a, 0) {
		t.Error("CopyFrom failed")
	}
	b.Zero()
	if b.Sum() != 0 {
		t.Error("Zero failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom size mismatch should panic")
		}
	}()
	New(2).CopyFrom(a)
}

func TestRandUniformRange(t *testing.T) {
	x := New(1000).RandUniform(rand.New(rand.NewSource(5)), -2, 3)
	for _, v := range x.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform sample %g out of [-2,3)", v)
		}
	}
	if m := x.Mean(); math.Abs(m-0.5) > 0.3 {
		t.Errorf("uniform mean = %g, want ≈0.5", m)
	}
}
