package unlearn

import (
	"fmt"

	"goldfish/internal/baselines"
	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
)

// scenario projects the shared client configuration onto the baselines'
// setup (the baselines train on plain hard loss, so the composite-loss
// fields are dropped).
func scenario(c core.Config) baselines.Scenario {
	return baselines.Scenario{
		Model:       c.Model,
		Opt:         c.Opt,
		LocalEpochs: c.LocalEpochs,
		BatchSize:   c.BatchSize,
		Seed:        c.Seed,
	}
}

// retrainStrategy implements B1 ("retrain") and B2 ("fisher"): a deletion
// drops the rows from the owning client and restarts federated training
// from a freshly initialized global model over the remaining data. With
// precond set, local updates are preconditioned by a running diagonal
// Fisher-information estimate (Liu et al.), which speeds the recovery.
type retrainStrategy struct {
	name     string
	precond  bool
	sc       baselines.Scenario
	trainers []*baselines.PlainTrainer
	reinits  int64
	nextID   int
}

var (
	_ Strategy   = (*retrainStrategy)(nil)
	_ Membership = (*retrainStrategy)(nil)
)

// Name implements Strategy.
func (r *retrainStrategy) Name() string { return r.name }

// Setup implements Strategy.
func (r *retrainStrategy) Setup(env Env) ([]fed.LocalTrainer, error) {
	r.sc = scenario(env.Client)
	r.trainers = make([]*baselines.PlainTrainer, len(env.Parts))
	trainers := make([]fed.LocalTrainer, len(env.Parts))
	for i, p := range env.Parts {
		t, err := baselines.NewPlainTrainer(i, r.sc, p, r.precond)
		if err != nil {
			return nil, err
		}
		r.trainers[i] = t
		trainers[i] = t
	}
	r.nextID = len(r.trainers)
	return trainers, nil
}

// AddTrainer implements Membership: the new participant joins from the next
// round onward.
func (r *retrainStrategy) AddTrainer(ds *data.Dataset) (fed.LocalTrainer, int, error) {
	id := r.nextID
	t, err := baselines.NewPlainTrainer(id, r.sc, ds, r.precond)
	if err != nil {
		return nil, 0, err
	}
	r.trainers = append(r.trainers, t)
	r.nextID++
	return t, id, nil
}

// RemoveTrainer implements Membership. A departure with unlearnDeparted set
// follows the B1 reference semantics for client-level unlearning: every
// remaining client resets its optimizer (and Fisher) state and federated
// training restarts from a freshly initialized global model over the data
// that remains — a from-scratch retrain without the departed client.
func (r *retrainStrategy) RemoveTrainer(i int, unlearnDeparted bool) ([]float64, error) {
	if i < 0 || i >= len(r.trainers) {
		return nil, fmt.Errorf("unlearn: client %d out of range [0,%d)", i, len(r.trainers))
	}
	if len(r.trainers) == 1 {
		return nil, fmt.Errorf("unlearn: cannot remove the last client")
	}
	r.trainers = append(r.trainers[:i], r.trainers[i+1:]...)
	if !unlearnDeparted {
		return nil, nil
	}
	for _, t := range r.trainers {
		if err := t.Reset(); err != nil {
			return nil, err
		}
	}
	r.reinits++
	return baselines.ReinitVector(r.sc, r.reinits*7919)
}

// Forget implements Strategy: drop the rows, reset every client's
// optimizer and Fisher state, and reinitialize the global model — the
// reference unlearning procedure retrains from scratch without the removed
// data, so no state accumulated around the contaminated model may survive.
func (r *retrainStrategy) Forget(clientID int, rows []int, _ []float64) ([]float64, error) {
	if clientID < 0 || clientID >= len(r.trainers) {
		return nil, fmt.Errorf("unlearn: client %d out of range [0,%d)", clientID, len(r.trainers))
	}
	if err := r.trainers[clientID].Forget(rows); err != nil {
		return nil, err
	}
	for i, t := range r.trainers {
		if i == clientID {
			continue // already reset by Forget
		}
		if err := t.Reset(); err != nil {
			return nil, err
		}
	}
	r.reinits++
	return baselines.ReinitVector(r.sc, r.reinits*7919)
}

// teacherStrategy implements B3 ("incompetent-teacher", Chundawat et al.):
// a deletion keeps the contaminated global model as the competent teacher;
// the deleting client distills from it on remaining data and from a random
// incompetent teacher on the removed data, while everyone else keeps
// training normally.
type teacherStrategy struct {
	trainers []*baselines.IncompetentTrainer
}

var _ Strategy = (*teacherStrategy)(nil)

// Name implements Strategy.
func (t *teacherStrategy) Name() string { return "incompetent-teacher" }

// Setup implements Strategy. The distillation temperature is taken from the
// client configuration's loss (paper default T=3).
func (t *teacherStrategy) Setup(env Env) ([]fed.LocalTrainer, error) {
	sc := scenario(env.Client)
	t.trainers = make([]*baselines.IncompetentTrainer, len(env.Parts))
	trainers := make([]fed.LocalTrainer, len(env.Parts))
	for i, p := range env.Parts {
		tr, err := baselines.NewIncompetentTrainer(i, sc, p, env.Client.Loss.Temp)
		if err != nil {
			return nil, err
		}
		t.trainers[i] = tr
		trainers[i] = tr
	}
	return trainers, nil
}

// Forget implements Strategy: the current (contaminated) global model stays
// in place and becomes the deleting client's competent teacher.
func (t *teacherStrategy) Forget(clientID int, rows []int, global []float64) ([]float64, error) {
	if clientID < 0 || clientID >= len(t.trainers) {
		return nil, fmt.Errorf("unlearn: client %d out of range [0,%d)", clientID, len(t.trainers))
	}
	if err := t.trainers[clientID].Forget(rows, global); err != nil {
		return nil, err
	}
	return nil, nil
}
