package unlearn

import (
	"context"
	"fmt"
	"sort"
	"time"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/nn"
	"goldfish/internal/obs"
)

// Config configures a Federation: the shared client setup, the unlearning
// strategy, and the round-engine knobs.
type Config struct {
	// Client is the configuration shared by all clients.
	Client core.Config
	// Unlearner is the unlearning strategy; nil selects the paper's
	// Goldfish procedure.
	Unlearner Strategy
	// Aggregator combines uploads; nil selects FedAvg. Use
	// fed.AdaptiveWeight together with ServerTest for the paper's
	// extension-module aggregation.
	Aggregator fed.Aggregator
	// ServerTest, when set, is the central test set used to score uploaded
	// models (MSE of Eq. 12) before adaptive-weight aggregation.
	ServerTest *data.Dataset
	// MinClients is the minimum number of successful client updates per
	// round; fewer aborts the round. Defaults to 1.
	MinClients int
	// ClientFraction, when in (0,1), trains only a random subset of
	// clients each round; 0 or 1 trains everyone.
	ClientFraction float64
	// RoundTimeout bounds one round of local training; stragglers are
	// dropped for the round. 0 disables the bound.
	RoundTimeout time.Duration
	// SampleSeed drives the client-sampling randomness.
	SampleSeed int64
	// Transport, when set, replaces the default in-process transport over
	// the strategy's trainers (advanced: e.g. a custom distribution
	// layer). Dynamic membership requires the default transport.
	Transport fed.Transport
}

// RoundStats summarizes one completed federation round for callbacks.
type RoundStats struct {
	// Round is the completed round index (monotonic across Run calls).
	Round int
	// Global is a copy of the aggregated state vector; callbacks may
	// retain or mutate it freely.
	Global []float64
	// Updates are the client uploads aggregated this round.
	Updates []fed.ModelUpdate
	// Dropped lists client IDs whose local training failed this round.
	Dropped []int
	// UnlearningRound is true when this round processed deletion requests.
	UnlearningRound bool
}

// Federation orchestrates a federated-unlearning run: one pluggable
// Strategy over the shared round engine, plus the deletion lifecycle and
// dynamic membership. It is not safe for concurrent use; drive it from one
// goroutine.
type Federation struct {
	cfg            Config
	strategy       Strategy
	local          *fed.LocalTransport // nil when cfg.Transport is custom
	engine         *fed.Engine
	evalNet        *nn.Network
	onRound        func(RoundStats)
	pendingUnlearn bool

	// obs is the observer captured from the most recent Run's context, kept
	// so deletion requests arriving BETWEEN runs are still observed; nil is
	// the no-op default. forgetMarks records when each pending deletion
	// request arrived; marks settle into per-strategy rounds-to-forget /
	// time-to-forget histograms when the recovery rounds complete.
	obs         *obs.Observer
	forgetMarks []forgetMark

	// parts holds each participant's ORIGINAL local dataset (by current
	// position; shifted on Add/RemoveClient), and removed records which
	// original rows each participant has already deleted. Together they let
	// RequestDeletionRows and RequestClassDeletion address rows against the
	// original dataset regardless of the strategy's own row addressing.
	parts   []*data.Dataset
	removed []map[int]bool
}

// buildModel constructs a network, wrapping errors with package context.
func buildModel(cfg model.Config) (*nn.Network, error) {
	net, err := model.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("unlearn: building model: %w", err)
	}
	return net, nil
}

// NewFederation creates a federation with one participant per dataset
// partition, running the configured unlearning strategy.
func NewFederation(cfg Config, parts []*data.Dataset) (*Federation, error) {
	if err := cfg.Client.Validate(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("unlearn: no client partitions")
	}
	if cfg.MinClients > len(parts) {
		return nil, fmt.Errorf("unlearn: MinClients %d exceeds client count %d", cfg.MinClients, len(parts))
	}
	if cfg.Unlearner == nil {
		cfg.Unlearner = &Goldfish{}
	}
	trainers, err := cfg.Unlearner.Setup(Env{Client: cfg.Client, Parts: parts})
	if err != nil {
		return nil, err
	}
	if len(trainers) != len(parts) {
		return nil, fmt.Errorf("unlearn: strategy %s built %d trainers for %d partitions",
			cfg.Unlearner.Name(), len(trainers), len(parts))
	}
	initNet, err := buildModel(cfg.Client.Model)
	if err != nil {
		return nil, err
	}
	evalNet, err := buildModel(cfg.Client.Model)
	if err != nil {
		return nil, err
	}

	f := &Federation{
		cfg:      cfg,
		strategy: cfg.Unlearner,
		evalNet:  evalNet,
		parts:    append([]*data.Dataset(nil), parts...),
		removed:  make([]map[int]bool, len(parts)),
	}
	for i := range f.removed {
		f.removed[i] = map[int]bool{}
	}

	var scorer fed.Scorer
	if _, adaptive := cfg.Aggregator.(fed.AdaptiveWeight); adaptive && cfg.ServerTest != nil {
		// Pooled replicas: the engine scores a round's updates concurrently.
		scorer = fed.ScorerFunc(metrics.NewMSEScorer(evalNet, cfg.ServerTest, cfg.Client.BatchSize))
	}

	transport := cfg.Transport
	if transport == nil {
		f.local = fed.NewLocalTransport(trainers)
		transport = f.local
	}
	engine, err := fed.NewEngine(fed.EngineConfig{
		Aggregator:     cfg.Aggregator,
		Scorer:         scorer,
		MinClients:     cfg.MinClients,
		ClientFraction: cfg.ClientFraction,
		RoundTimeout:   cfg.RoundTimeout,
		SampleSeed:     cfg.SampleSeed,
		OnRound: func(ri fed.RoundInfo) {
			unlearning := f.pendingUnlearn
			f.pendingUnlearn = false
			if f.onRound != nil {
				f.onRound(RoundStats{
					Round:           ri.Round,
					Global:          ri.Global,
					Updates:         ri.Updates,
					Dropped:         ri.Dropped,
					UnlearningRound: unlearning,
				})
			}
		},
	}, initNet.StateVector(), transport)
	if err != nil {
		return nil, err
	}
	f.engine = engine
	return f, nil
}

// Strategy returns the active unlearning strategy.
func (f *Federation) Strategy() Strategy { return f.strategy }

// NumClients returns the number of participants.
func (f *Federation) NumClients() int {
	if f.local != nil {
		return f.local.NumClients()
	}
	return f.cfg.Transport.NumClients()
}

// Client returns participant i, or nil when i is out of range or the
// strategy's participants are not Goldfish clients.
func (f *Federation) Client(i int) *core.Client {
	if ca, ok := f.strategy.(ClientAccessor); ok {
		return ca.Client(i)
	}
	return nil
}

// Round returns the number of completed rounds.
func (f *Federation) Round() int { return f.engine.Round() }

// SetBeforeRound installs (or replaces) the engine's round-boundary hook:
// it runs at the start of every round, before client sampling, and may
// submit deletion requests or change membership — the attachment point for
// the batching deletion service (internal/serve). Not safe to call while a
// Run is in flight.
func (f *Federation) SetBeforeRound(fn func(ctx context.Context, round int) error) {
	f.engine.SetBeforeRound(fn)
}

// Global returns a copy of the current global state vector.
func (f *Federation) Global() []float64 { return f.engine.Global() }

// GlobalNet returns a fresh network loaded with the current global state.
func (f *Federation) GlobalNet() (*nn.Network, error) {
	net, err := buildModel(f.cfg.Client.Model)
	if err != nil {
		return nil, err
	}
	if err := net.SetStateVector(f.engine.Global()); err != nil {
		return nil, fmt.Errorf("unlearn: loading global state: %w", err)
	}
	return net, nil
}

// RequestDeletion submits a deletion request for rows of a client's local
// dataset. The strategy decides how it is honoured: Goldfish runs
// Algorithm 1 lines 8–17, the retrain baselines drop the rows and restart
// from scratch, the incompetent teacher distills the data away.
func (f *Federation) RequestDeletion(clientID int, rows []int) error {
	f.obs.Event("unlearn/request",
		obs.Str("strategy", f.strategy.Name()), obs.Int("client", clientID), obs.Int("rows", len(rows)))
	sp := f.obs.StartSpan("unlearn/forget",
		obs.Str("strategy", f.strategy.Name()), obs.Int("client", clientID))
	next, err := f.strategy.Forget(clientID, rows, f.engine.Global())
	sp.End()
	if err != nil {
		return err
	}
	if next != nil {
		f.engine.SetGlobal(next)
	}
	f.pendingUnlearn = true
	f.obs.Counter("unlearn.requests").Inc()
	f.markForget()
	return nil
}

// forgetMark is one pending deletion request awaiting its recovery rounds:
// round is the engine round when the request arrived, at the observer-relative
// arrival time.
type forgetMark struct {
	round int
	at    time.Duration
}

// markForget records a pending deletion request for the forgetting-latency
// histograms. No-op without an observer (nothing would consume the mark).
func (f *Federation) markForget() {
	if f.obs == nil {
		return
	}
	f.forgetMarks = append(f.forgetMarks, forgetMark{round: f.engine.Round(), at: f.obs.Elapsed()})
}

// settleForgetMarks resolves every pending deletion request against the
// rounds completed so far: a request is considered forgotten once the run
// that followed it finished, so rounds-to-forget is the recovery-round count
// and time-to-forget the wall time from request to the end of that run. Both
// land in per-strategy histograms (the p50/p99 forgetting-latency SLO
// substrate) plus an unlearn/forgotten trace event each.
func (f *Federation) settleForgetMarks() {
	if f.obs == nil || len(f.forgetMarks) == 0 {
		return
	}
	name := f.strategy.Name()
	for _, m := range f.forgetMarks {
		rounds := f.engine.Round() - m.round
		ms := float64((f.obs.Elapsed() - m.at).Microseconds()) / 1e3
		f.obs.Histogram("unlearn.rounds_to_forget."+name, obs.RoundBuckets).Observe(float64(rounds))
		f.obs.Histogram("unlearn.time_to_forget_ms."+name, obs.MillisBuckets).Observe(ms)
		f.obs.Event("unlearn/forgotten",
			obs.Str("strategy", name), obs.Int("rounds", rounds), obs.F64("ms", ms))
	}
	f.forgetMarks = f.forgetMarks[:0]
}

// RequestDeletionRows submits a deletion request whose rows index the
// client's ORIGINAL dataset, independent of the strategy's own addressing:
// the Federation tracks prior removals per participant and remaps to the
// current post-removal view for strategies that index it (the baselines).
// Rows already removed by an earlier request are rejected, mirroring the
// Goldfish client's double-removal check.
func (f *Federation) RequestDeletionRows(clientID int, rows []int) error {
	if clientID < 0 || clientID >= len(f.parts) {
		return fmt.Errorf("unlearn: client %d out of range [0,%d)", clientID, len(f.parts))
	}
	if len(rows) == 0 {
		return fmt.Errorf("unlearn: client %d: empty deletion request", clientID)
	}
	part, rem := f.parts[clientID], f.removed[clientID]
	uniq := make([]int, 0, len(rows))
	seen := make(map[int]bool, len(rows))
	for _, r := range rows {
		if r < 0 || r >= part.Len() {
			return fmt.Errorf("unlearn: client %d: row %d out of range [0,%d)", clientID, r, part.Len())
		}
		if rem[r] {
			return fmt.Errorf("unlearn: client %d: row %d already removed", clientID, r)
		}
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	sort.Ints(uniq)

	mapped := f.mapRowsForStrategy(clientID, uniq)
	if err := f.RequestDeletion(clientID, mapped); err != nil {
		return err
	}
	for _, r := range uniq {
		rem[r] = true
	}
	return nil
}

// mapRowsForStrategy is the declared remap chokepoint between original-row
// addressing and the strategy's view: every original-dataset row index must
// pass through here before it reaches a training sink (the deletedflow
// analyzer enforces this statically). Strategies that declare original
// addressing via RowAddresser receive the rows unchanged; for everyone else
// each original row r maps to its current-view index — r minus the number
// of already-removed original rows before it.
func (f *Federation) mapRowsForStrategy(clientID int, rows []int) []int {
	if ra, ok := f.strategy.(RowAddresser); ok && ra.AddressesOriginalRows() {
		return rows
	}
	rem := f.removed[clientID]
	removedSorted := make([]int, 0, len(rem))
	for r := range rem {
		removedSorted = append(removedSorted, r)
	}
	sort.Ints(removedSorted)
	mapped := make([]int, len(rows))
	for i, r := range rows {
		shift := sort.SearchInts(removedSorted, r)
		mapped[i] = r - shift
	}
	return mapped
}

// RemainingRows returns the not-yet-removed original row indices of
// participant clientID's dataset, in ascending order.
func (f *Federation) RemainingRows(clientID int) []int {
	if clientID < 0 || clientID >= len(f.parts) {
		return nil
	}
	rem := f.removed[clientID]
	out := make([]int, 0, f.parts[clientID].Len()-len(rem))
	for r := 0; r < f.parts[clientID].Len(); r++ {
		if !rem[r] {
			out = append(out, r)
		}
	}
	return out
}

// RemainingRowsOfClass returns the not-yet-removed original row indices of a
// participant's samples labelled class, in ascending order.
func (f *Federation) RemainingRowsOfClass(clientID, class int) []int {
	if clientID < 0 || clientID >= len(f.parts) {
		return nil
	}
	rem := f.removed[clientID]
	var out []int
	for _, r := range f.parts[clientID].RowsOfClass(class) {
		if !rem[r] {
			out = append(out, r)
		}
	}
	return out
}

// RequestClassDeletion submits a class-level deletion: every remaining
// sample labelled class, across all participants, is requested for removal
// (one Forget per affected participant, in participant order). It returns
// the removed original row indices per participant position; at least one
// sample must remain to remove or an error is returned.
func (f *Federation) RequestClassDeletion(class int) (map[int][]int, error) {
	if len(f.parts) == 0 {
		return nil, fmt.Errorf("unlearn: no participants")
	}
	if class < 0 || class >= f.parts[0].Classes {
		return nil, fmt.Errorf("unlearn: class %d out of range [0,%d)", class, f.parts[0].Classes)
	}
	out := map[int][]int{}
	for i := range f.parts {
		rows := f.RemainingRowsOfClass(i, class)
		if len(rows) == 0 {
			continue
		}
		if err := f.RequestDeletionRows(i, rows); err != nil {
			return out, fmt.Errorf("unlearn: class %d on client %d: %w", class, i, err)
		}
		out[i] = rows
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unlearn: no remaining samples of class %d", class)
	}
	return out, nil
}

// Partition returns participant i's ORIGINAL local dataset (deletions do not
// shrink it), or nil when i is out of range.
func (f *Federation) Partition(i int) *data.Dataset {
	if i < 0 || i >= len(f.parts) {
		return nil
	}
	return f.parts[i]
}

// AddClient registers a new participant holding the given local dataset and
// returns its client ID (unique across the federation's lifetime, even
// after removals). The client joins from the next round onward.
func (f *Federation) AddClient(ds *data.Dataset) (int, error) {
	m, ok := f.strategy.(Membership)
	if !ok {
		return 0, fmt.Errorf("unlearn: strategy %s does not support dynamic membership", f.strategy.Name())
	}
	if f.local == nil {
		return 0, fmt.Errorf("unlearn: dynamic membership requires the in-process transport")
	}
	tr, id, err := m.AddTrainer(ds)
	if err != nil {
		return 0, err
	}
	f.local.Append(tr)
	f.parts = append(f.parts, ds)
	f.removed = append(f.removed, map[int]bool{})
	return id, nil
}

// RemoveClient removes a participant from the federation. When unlearn is
// true the removal is treated as a deletion request for the client's entire
// remaining dataset, so its contribution is actively forgotten rather than
// merely no longer aggregated.
func (f *Federation) RemoveClient(clientID int, unlearn bool) error {
	m, ok := f.strategy.(Membership)
	if !ok {
		return fmt.Errorf("unlearn: strategy %s does not support dynamic membership", f.strategy.Name())
	}
	if f.local == nil {
		return fmt.Errorf("unlearn: dynamic membership requires the in-process transport")
	}
	next, err := m.RemoveTrainer(clientID, unlearn)
	if err != nil {
		return err
	}
	if rerr := f.local.Remove(clientID); rerr != nil {
		return rerr
	}
	if clientID >= 0 && clientID < len(f.parts) {
		f.parts = append(f.parts[:clientID], f.parts[clientID+1:]...)
		f.removed = append(f.removed[:clientID], f.removed[clientID+1:]...)
	}
	if next != nil {
		f.engine.SetGlobal(next)
	}
	f.obs.Event("unlearn/client_removed",
		obs.Str("strategy", f.strategy.Name()), obs.Int("client", clientID), obs.Int("unlearn", boolInt(unlearn)))
	if unlearn {
		f.pendingUnlearn = true
		f.obs.Counter("unlearn.requests").Inc()
		f.markForget()
	}
	return nil
}

// boolInt encodes a bool as a 0/1 trace attribute.
func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Run executes n federation rounds, invoking onRound (may be nil) after
// each. It honours ctx cancellation. When ctx carries an obs.Observer the
// federation keeps it (so deletion requests between runs are observed too)
// and, on success, settles pending deletion requests into the per-strategy
// forgetting-latency histograms.
func (f *Federation) Run(ctx context.Context, n int, onRound func(RoundStats)) error {
	if o := obs.FromContext(ctx); o != nil {
		f.obs = o
	}
	f.onRound = onRound
	defer func() { f.onRound = nil }()
	if err := f.engine.Run(ctx, n); err != nil {
		return err
	}
	f.settleForgetMarks()
	return nil
}

// TestAccuracy evaluates the current global model on a dataset.
func (f *Federation) TestAccuracy(test *data.Dataset) (float64, error) {
	if err := f.evalNet.SetStateVector(f.engine.Global()); err != nil {
		return 0, fmt.Errorf("unlearn: loading global state: %w", err)
	}
	return metrics.Accuracy(f.evalNet, test, 0), nil
}
