package unlearn

import (
	"fmt"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/model"
)

// Goldfish is the paper's unlearning procedure (Algorithm 1) as a Strategy:
// each participant is a core.Client running the composite-loss local
// procedure, and a deletion request makes the target client unlearn with
// knowledge distillation, every other client rebuild by distillation, and
// the global model reinitialize before the next round.
type Goldfish struct {
	cfg     core.Config
	clients []*core.Client
	nextID  int
	reseed  int64
}

var (
	_ Strategy       = (*Goldfish)(nil)
	_ ClientAccessor = (*Goldfish)(nil)
	_ Membership     = (*Goldfish)(nil)
	_ RowAddresser   = (*Goldfish)(nil)
)

// Name implements Strategy.
func (g *Goldfish) Name() string { return "goldfish" }

// Setup implements Strategy.
func (g *Goldfish) Setup(env Env) ([]fed.LocalTrainer, error) {
	g.cfg = env.Client
	g.reseed = env.Client.Model.Seed
	g.clients = make([]*core.Client, len(env.Parts))
	trainers := make([]fed.LocalTrainer, len(env.Parts))
	for i, p := range env.Parts {
		c, err := core.NewClient(i, env.Client, p)
		if err != nil {
			return nil, err
		}
		g.clients[i] = c
		trainers[i] = c
	}
	g.nextID = len(g.clients)
	return trainers, nil
}

// reinitVector implements Algorithm 1 line 12: a freshly initialized global
// model, so the student starts the unlearning round without knowledge of
// the forget set.
func (g *Goldfish) reinitVector() ([]float64, error) {
	g.reseed += 7919
	mcfg := g.cfg.Model
	mcfg.Seed = g.reseed
	fresh, err := model.Build(mcfg)
	if err != nil {
		return nil, fmt.Errorf("unlearn: reinitializing global model: %w", err)
	}
	return fresh.StateVector(), nil
}

// Forget implements Strategy (Algorithm 1 lines 8–17): the target client
// unlearns with the Goldfish procedure, all other clients rebuild by
// distillation, and the global model is reinitialized before the next
// round.
func (g *Goldfish) Forget(clientID int, rows []int, _ []float64) ([]float64, error) {
	if clientID < 0 || clientID >= len(g.clients) {
		return nil, fmt.Errorf("unlearn: client %d out of range [0,%d)", clientID, len(g.clients))
	}
	if err := g.clients[clientID].RequestDeletion(rows); err != nil {
		return nil, err
	}
	for i, c := range g.clients {
		if i != clientID {
			c.MarkRetrain()
		}
	}
	return g.reinitVector()
}

// AddressesOriginalRows implements RowAddresser: core.Client deletion
// requests index the client's original dataset.
func (g *Goldfish) AddressesOriginalRows() bool { return true }

// Client implements ClientAccessor.
func (g *Goldfish) Client(i int) *core.Client {
	if i < 0 || i >= len(g.clients) {
		return nil
	}
	return g.clients[i]
}

// AddTrainer implements Membership: the new participant joins from the next
// round onward with an ID unique across the federation's lifetime.
func (g *Goldfish) AddTrainer(ds *data.Dataset) (fed.LocalTrainer, int, error) {
	id := g.nextID
	c, err := core.NewClient(id, g.cfg, ds)
	if err != nil {
		return nil, 0, err
	}
	g.clients = append(g.clients, c)
	g.nextID++
	return c, id, nil
}

// RemoveTrainer implements Membership. When unlearnDeparted is true the
// removal follows Algorithm 1's flow — the global model is reinitialized
// and every remaining client rebuilds by distillation — so the departed
// client's contribution is actively forgotten rather than merely no longer
// aggregated.
func (g *Goldfish) RemoveTrainer(i int, unlearnDeparted bool) ([]float64, error) {
	if i < 0 || i >= len(g.clients) {
		return nil, fmt.Errorf("unlearn: client %d out of range [0,%d)", i, len(g.clients))
	}
	if len(g.clients) == 1 {
		return nil, fmt.Errorf("unlearn: cannot remove the last client")
	}
	g.clients = append(g.clients[:i], g.clients[i+1:]...)
	if !unlearnDeparted {
		return nil, nil
	}
	for _, c := range g.clients {
		c.MarkRetrain()
	}
	return g.reinitVector()
}
