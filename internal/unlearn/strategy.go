// Package unlearn turns federated unlearning methods into interchangeable
// strategies over one shared federated runtime. A Strategy builds the
// per-client trainers that the round engine (internal/fed) drives and
// decides what happens when a deletion request arrives; the Federation in
// this package owns the engine, the deletion lifecycle and dynamic
// membership. The paper's Goldfish procedure and its three baselines (B1
// retrain-from-scratch, B2 Fisher rapid retraining, B3 incompetent teacher)
// are all registered here under stable names, so every entry point — the
// public API, the benchmark harness, the CLI tools — selects an unlearning
// method the same way.
package unlearn

import (
	"fmt"
	"sort"
	"sync"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
)

// Env is the federation setup a Strategy builds its trainers from.
type Env struct {
	// Client is the configuration shared by all clients (model, loss,
	// optimizer, epochs, batch size, sharding, seed).
	Client core.Config
	// Parts are the per-client local datasets.
	Parts []*data.Dataset
}

// Strategy is a pluggable federated-unlearning method: it owns the
// per-client training logic and the reaction to deletion requests, while
// the shared round engine owns sampling, timeouts, aggregation and hooks.
type Strategy interface {
	// Name is the strategy's registry name.
	Name() string
	// Setup builds one fed.LocalTrainer per partition. It is called once,
	// before the first round.
	Setup(env Env) ([]fed.LocalTrainer, error)
	// Forget processes a deletion request for rows of a client's local
	// dataset. global is the current global state vector; a non-nil return
	// value replaces the global model before the next round (e.g. the
	// Goldfish reinitialization of Algorithm 1 line 12), while nil keeps
	// the current one (e.g. B3 keeps the contaminated model as teacher).
	Forget(clientID int, rows []int, global []float64) ([]float64, error)
}

// RowAddresser is optionally implemented by strategies to declare how
// Forget interprets deletion row indices. Without it the Federation assumes
// rows address the client's current (post-removal) dataset view, which is
// how the retrain and incompetent-teacher baselines index.
type RowAddresser interface {
	// AddressesOriginalRows reports whether Forget rows index the client's
	// original dataset (true, e.g. Goldfish) or its current post-removal
	// view (false).
	AddressesOriginalRows() bool
}

// ClientAccessor is implemented by strategies whose participants are
// Goldfish clients and can be inspected (shard managers, active row
// counts).
type ClientAccessor interface {
	// Client returns participant i, or nil when i is out of range.
	Client(i int) *core.Client
}

// Membership is implemented by strategies that support clients joining and
// leaving between rounds (the paper's §V outlook).
type Membership interface {
	// AddTrainer registers a new participant over the given dataset and
	// returns its trainer and lifetime-unique client ID.
	AddTrainer(ds *data.Dataset) (fed.LocalTrainer, int, error)
	// RemoveTrainer removes participant i. When unlearnDeparted is true
	// the departure is treated as a deletion of the client's entire
	// dataset; a non-nil returned vector replaces the global model.
	RemoveTrainer(i int, unlearnDeparted bool) ([]float64, error)
}

// Factory creates a fresh, un-setup Strategy instance.
type Factory func() Strategy

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a strategy factory under name. Registering a name twice is a
// wiring bug, not a runtime condition, so it panics rather than silently
// replacing the earlier factory. The built-in names are "goldfish", "retrain"
// (B1), "fisher" (B2) and "incompetent-teacher" (B3).
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("unlearn: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("unlearn: Register called twice for strategy " + name)
	}
	registry[name] = f
}

// New returns a fresh instance of the named strategy.
func New(name string) (Strategy, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unlearn: unknown strategy %q (registered: %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered strategy names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("goldfish", func() Strategy { return &Goldfish{} })
	Register("retrain", func() Strategy { return &retrainStrategy{name: "retrain"} })
	Register("fisher", func() Strategy { return &retrainStrategy{name: "fisher", precond: true} })
	Register("incompetent-teacher", func() Strategy { return &teacherStrategy{} })
}
