package unlearn

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"goldfish/internal/core"
	"goldfish/internal/data"
	"goldfish/internal/fed"
	"goldfish/internal/loss"
	"goldfish/internal/metrics"
	"goldfish/internal/model"
	"goldfish/internal/optim"
)

// testConfig returns a fast configuration for tiny synthetic data.
func testConfig(classes int) core.Config {
	return core.Config{
		Model:       model.Config{Arch: model.ArchMLP, InC: 1, InH: 12, InW: 12, Classes: classes, Seed: 1},
		Loss:        loss.NewGoldfish(),
		Opt:         optim.SGDConfig{LR: 0.1, Momentum: 0.9, ClipNorm: 5},
		LocalEpochs: 3,
		BatchSize:   32,
		TempAlpha:   1,
		Seed:        1,
	}
}

func tinyMNIST(t *testing.T) (train, test *data.Dataset) {
	t.Helper()
	spec, err := data.SpecMNIST(data.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err = data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"goldfish", "retrain", "fisher", "incompetent-teacher"} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
	names := Names()
	if len(names) < 4 {
		t.Errorf("Names() = %v, want at least the four built-ins", names)
	}
}

func TestFederationTrainsToUsefulAccuracy(t *testing.T) {
	train, test := tinyMNIST(t)
	rng := rand.New(rand.NewSource(1))
	parts, err := data.PartitionIID(train, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	var rounds int
	if err := f.Run(context.Background(), 10, func(rs RoundStats) { rounds++ }); err != nil {
		t.Fatal(err)
	}
	if rounds != 10 || f.Round() != 10 {
		t.Errorf("rounds = %d / Round() = %d, want 10", rounds, f.Round())
	}
	acc, err := f.TestAccuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 {
		t.Errorf("federated accuracy %g too low after 10 rounds (chance = 0.1)", acc)
	}
}

func TestUnlearningRemovesBackdoor(t *testing.T) {
	train, test := tinyMNIST(t)
	rng := rand.New(rand.NewSource(2))
	parts, err := data.PartitionIID(train, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Poison 30% of client 0's data.
	bd := data.DefaultBackdoor()
	poisoned, err := bd.Poison(parts[0], 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	triggered, err := bd.TriggerCopy(test)
	if err != nil {
		t.Fatal(err)
	}

	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Run(ctx, 10, nil); err != nil {
		t.Fatal(err)
	}
	net, err := f.GlobalNet()
	if err != nil {
		t.Fatal(err)
	}
	asrBefore := metrics.AttackSuccessRate(net, triggered, bd.TargetLabel, 0)
	if asrBefore < 0.4 {
		t.Fatalf("backdoor did not take hold: ASR %g (need a contaminated origin model)", asrBefore)
	}

	// Unlearn the poisoned rows and keep training.
	if err := f.RequestDeletion(0, poisoned); err != nil {
		t.Fatal(err)
	}
	var sawUnlearningRound bool
	if err := f.Run(ctx, 8, func(rs RoundStats) {
		if rs.UnlearningRound {
			sawUnlearningRound = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !sawUnlearningRound {
		t.Error("deletion did not trigger an unlearning round")
	}

	net, err = f.GlobalNet()
	if err != nil {
		t.Fatal(err)
	}
	asrAfter := metrics.AttackSuccessRate(net, triggered, bd.TargetLabel, 0)
	accAfter, err := f.TestAccuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if asrAfter > asrBefore/2 {
		t.Errorf("unlearning left ASR at %g (was %g)", asrAfter, asrBefore)
	}
	if accAfter < 0.35 {
		t.Errorf("unlearning destroyed utility: accuracy %g", accAfter)
	}
}

func TestEarlyTerminationCutsEpochs(t *testing.T) {
	train, _ := tinyMNIST(t)
	rng := rand.New(rand.NewSource(3))
	parts, err := data.PartitionIID(train, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(10)
	cfg.LocalEpochs = 8
	cfg.EarlyDelta = 1000 // absurdly lax: stop after the first epoch
	f, err := NewFederation(Config{Client: cfg}, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 has no previous global (no stopper); round 1 should stop
	// after one epoch.
	if err := f.Run(context.Background(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.Client(0).LastEpochs(); got != 1 {
		t.Errorf("LastEpochs = %d, want 1 with lax delta", got)
	}

	// Tight delta: all epochs run.
	cfg.EarlyDelta = 0
	f2, err := NewFederation(Config{Client: cfg}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Run(context.Background(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if got := f2.Client(0).LastEpochs(); got != cfg.LocalEpochs {
		t.Errorf("LastEpochs = %d, want %d with disabled early termination", got, cfg.LocalEpochs)
	}
}

func TestFederationAdaptiveWeights(t *testing.T) {
	train, test := tinyMNIST(t)
	rng := rand.New(rand.NewSource(4))
	parts, err := data.PartitionHeterogeneous(train, 3, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{
		Client:     testConfig(10),
		Aggregator: fed.AdaptiveWeight{},
		ServerTest: test,
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	var gotMSE bool
	if err := f.Run(context.Background(), 3, func(rs RoundStats) {
		for _, u := range rs.Updates {
			if u.MSE > 0 {
				gotMSE = true
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !gotMSE {
		t.Error("adaptive aggregation ran without MSE scores")
	}
}

func TestFederationValidation(t *testing.T) {
	train, _ := tinyMNIST(t)
	parts, err := data.PartitionIID(train, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFederation(Config{Client: testConfig(10)}, nil); err == nil {
		t.Error("no partitions accepted")
	}
	bad := testConfig(10)
	bad.LocalEpochs = 0
	if _, err := NewFederation(Config{Client: bad}, parts); err == nil {
		t.Error("invalid client config accepted")
	}
	if _, err := NewFederation(Config{Client: testConfig(10), MinClients: 5}, parts); err == nil {
		t.Error("MinClients above client count accepted")
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RequestDeletion(7, []int{0}); err == nil {
		t.Error("deletion for unknown client accepted")
	}
	if f.Client(7) != nil {
		t.Error("out-of-range Client(i) should be nil, not panic")
	}
	if f.Client(-1) != nil {
		t.Error("negative Client(i) should be nil, not panic")
	}
}

func TestFederationCancellation(t *testing.T) {
	train, _ := tinyMNIST(t)
	parts, err := data.PartitionIID(train, 2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Run(ctx, 5, nil); err == nil {
		t.Error("cancelled run should fail")
	}
}

// TestRoundStatsGlobalIsACopy guards the old aliasing bug: a callback that
// mutates RoundStats.Global must not corrupt federation state.
func TestRoundStatsGlobalIsACopy(t *testing.T) {
	train, test := tinyMNIST(t)
	parts, err := data.PartitionIID(train, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(context.Background(), 3, func(rs RoundStats) {
		for i := range rs.Global {
			rs.Global[i] = 1e9 // vandalize the callback's view
		}
	}); err != nil {
		t.Fatal(err)
	}
	acc, err := f.TestAccuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.3 {
		t.Errorf("mutating RoundStats.Global corrupted the federation: accuracy %g", acc)
	}
}

func TestFederationAddClient(t *testing.T) {
	train, test := tinyMNIST(t)
	rng := rand.New(rand.NewSource(20))
	parts, err := data.PartitionIID(train, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts[:2])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Run(ctx, 2, nil); err != nil {
		t.Fatal(err)
	}
	id, err := f.AddClient(parts[2])
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || f.NumClients() != 3 {
		t.Fatalf("AddClient id=%d clients=%d, want 2/3", id, f.NumClients())
	}
	var updates int
	if err := f.Run(ctx, 1, func(rs RoundStats) { updates = len(rs.Updates) }); err != nil {
		t.Fatal(err)
	}
	if updates != 3 {
		t.Errorf("round after join aggregated %d updates, want 3", updates)
	}
	if acc, err := f.TestAccuracy(test); err != nil || acc < 0.2 {
		t.Errorf("accuracy %g, err %v", acc, err)
	}
}

func TestFederationRemoveClient(t *testing.T) {
	train, _ := tinyMNIST(t)
	rng := rand.New(rand.NewSource(21))
	parts, err := data.PartitionIID(train, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Run(ctx, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveClient(5, false); err == nil {
		t.Error("out-of-range removal accepted")
	}
	if err := f.RemoveClient(1, true); err != nil {
		t.Fatal(err)
	}
	if f.NumClients() != 2 {
		t.Fatalf("NumClients = %d, want 2", f.NumClients())
	}
	var sawUnlearn bool
	var updates int
	if err := f.Run(ctx, 1, func(rs RoundStats) {
		sawUnlearn = rs.UnlearningRound
		updates = len(rs.Updates)
	}); err != nil {
		t.Fatal(err)
	}
	if !sawUnlearn {
		t.Error("unlearning removal should trigger a reinitialized round")
	}
	if updates != 2 {
		t.Errorf("aggregated %d updates, want 2", updates)
	}
	// Removing down to the last client must fail.
	if err := f.RemoveClient(0, false); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveClient(0, false); err == nil {
		t.Error("removing the last client accepted")
	}
}

// TestBaselineStrategiesRoundTrip drives every registered baseline through
// the same federation API as the Goldfish procedure: train, delete, keep
// training, and end with a usable model over the remaining data.
func TestBaselineStrategiesRoundTrip(t *testing.T) {
	train, test := tinyMNIST(t)
	for _, name := range []string{"retrain", "fisher", "incompetent-teacher"} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(30))
			parts, err := data.PartitionIID(train, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(10)
			if name == "fisher" {
				cfg.Opt.LR = 0.01 // preconditioned steps are larger; lower LR
			}
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewFederation(Config{Client: cfg, Unlearner: s}, parts)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if err := f.Run(ctx, 6, nil); err != nil {
				t.Fatal(err)
			}
			if err := f.RequestDeletion(0, []int{0, 1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			var sawUnlearn bool
			if err := f.Run(ctx, 6, func(rs RoundStats) { sawUnlearn = sawUnlearn || rs.UnlearningRound }); err != nil {
				t.Fatal(err)
			}
			if !sawUnlearn {
				t.Error("deletion did not mark an unlearning round")
			}
			acc, err := f.TestAccuracy(test)
			if err != nil {
				t.Fatal(err)
			}
			if acc < 0.3 {
				t.Errorf("%s: accuracy %g did not recover after unlearning", name, acc)
			}
			// Baselines have no Goldfish clients to inspect.
			if f.Client(0) != nil {
				t.Errorf("%s: Client(0) should be nil for non-goldfish strategies", name)
			}
			// Retrain-family baselines support dynamic membership (client-
			// level unlearning retrains without the departed client); the
			// incompetent teacher does not.
			if name == "incompetent-teacher" {
				if _, err := f.AddClient(parts[0]); err == nil {
					t.Errorf("%s: AddClient should be unsupported", name)
				}
			} else {
				id, err := f.AddClient(parts[0].Clone())
				if err != nil {
					t.Fatalf("%s: AddClient: %v", name, err)
				}
				if id != 3 {
					t.Errorf("%s: AddClient id = %d, want 3", name, id)
				}
				if f.NumClients() != 4 {
					t.Errorf("%s: NumClients = %d, want 4", name, f.NumClients())
				}
				if err := f.RemoveClient(3, true); err != nil {
					t.Fatalf("%s: RemoveClient: %v", name, err)
				}
				if err := f.Run(ctx, 1, nil); err != nil {
					t.Fatalf("%s: round after membership churn: %v", name, err)
				}
			}
		})
	}
}

// TestRequestDeletionRowsRemapsForCurrentView exercises the original-row
// addressing across both addressing families. The retrain baseline indexes
// the current post-removal view, so a second request against high original
// indices only succeeds if the federation remapped them; without the remap,
// original row 9 would be out of range of the 5-row current view.
func TestRequestDeletionRowsRemapsForCurrentView(t *testing.T) {
	train, _ := tinyMNIST(t)
	ctx := context.Background()
	for _, name := range []string{"retrain", "goldfish"} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			parts, err := data.PartitionIID(train, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewFederation(Config{Client: testConfig(10), Unlearner: s}, parts)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Run(ctx, 1, nil); err != nil {
				t.Fatal(err)
			}
			last := parts[0].Len() - 1
			if err := f.RequestDeletionRows(0, []int{0, 1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			if err := f.RequestDeletionRows(0, []int{last, last - 1}); err != nil {
				t.Fatalf("%s: second original-index request failed: %v", name, err)
			}
			// Double removal is rejected for both families.
			if err := f.RequestDeletionRows(0, []int{2}); err == nil {
				t.Errorf("%s: double removal accepted", name)
			}
			// Out-of-range originals are rejected.
			if err := f.RequestDeletionRows(0, []int{parts[0].Len()}); err == nil {
				t.Errorf("%s: out-of-range row accepted", name)
			}
			if err := f.RequestDeletionRows(9, []int{0}); err == nil {
				t.Errorf("%s: out-of-range client accepted", name)
			}
			if err := f.Run(ctx, 1, nil); err != nil {
				t.Fatalf("%s: round after deletions: %v", name, err)
			}
		})
	}
}

// TestRequestClassDeletion removes an entire class across all participants
// and verifies the federation's remaining-rows bookkeeping.
func TestRequestClassDeletion(t *testing.T) {
	train, _ := tinyMNIST(t)
	rng := rand.New(rand.NewSource(99))
	parts, err := data.PartitionIID(train, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(Config{Client: testConfig(10)}, parts)
	if err != nil {
		t.Fatal(err)
	}
	const class = 4
	want := 0
	for i, p := range parts {
		n := len(p.RowsOfClass(class))
		want += n
		if got := len(f.RemainingRowsOfClass(i, class)); got != n {
			t.Fatalf("client %d: RemainingRowsOfClass = %d, want %d", i, got, n)
		}
	}
	removed, err := f.RequestClassDeletion(class)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i, rows := range removed {
		got += len(rows)
		for _, r := range rows {
			if parts[i].Y[r] != class {
				t.Fatalf("client %d: removed row %d has label %d", i, r, parts[i].Y[r])
			}
		}
	}
	if got != want {
		t.Errorf("class deletion removed %d rows, want %d", got, want)
	}
	for i := range parts {
		if left := f.RemainingRowsOfClass(i, class); len(left) != 0 {
			t.Errorf("client %d still has %d rows of class %d", i, len(left), class)
		}
	}
	// The class is gone: a repeat request has nothing to remove.
	if _, err := f.RequestClassDeletion(class); err == nil {
		t.Error("second class deletion found rows to remove")
	}
	if _, err := f.RequestClassDeletion(-1); err == nil {
		t.Error("negative class accepted")
	}
	if _, err := f.RequestClassDeletion(10); err == nil {
		t.Error("out-of-range class accepted")
	}
	if err := f.Run(context.Background(), 1, nil); err != nil {
		t.Fatalf("round after class deletion: %v", err)
	}
}

// mustPanic runs fn and fails the test unless it panics with a message
// containing wantMsg.
func mustPanic(t *testing.T, what, wantMsg string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: Register did not panic", what)
			return
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantMsg) {
			t.Errorf("%s: panic = %v, want message containing %q", what, r, wantMsg)
		}
	}()
	fn()
}

// TestRegisterMisusePanics pins the registry's wiring-bug contract: duplicate
// names, empty names and nil factories all panic instead of silently
// replacing or registering broken entries.
func TestRegisterMisusePanics(t *testing.T) {
	factory := func() Strategy { return &Goldfish{} }
	mustPanic(t, "duplicate name", "Register called twice", func() { Register("goldfish", factory) })
	mustPanic(t, "empty name", "empty name", func() { Register("", factory) })
	mustPanic(t, "nil factory", "nil factory", func() { Register("nil-factory-strategy", nil) })
	if _, err := New("nil-factory-strategy"); err == nil {
		t.Error("rejected registration still reachable via New")
	}
}

// TestUnknownStrategyErrorListsNames asserts the lookup-failure error names
// every registered strategy, so a typo in a spec is self-diagnosing.
func TestUnknownStrategyErrorListsNames(t *testing.T) {
	_, err := New("no-such-strategy")
	if err == nil {
		t.Fatal("New(unknown) succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-strategy error %q does not list registered name %q", err, name)
		}
	}
}
