// Package version centralizes the release stamp the goldfish CLIs print for
// their -version flag, so one bump covers every binary.
package version

import (
	"fmt"
	"io"
	"runtime"
)

// Version is the goldfish release stamp, bumped once per release for all
// CLIs.
const Version = "0.6.0"

// Fprint writes the canonical one-line version banner for the named tool.
func Fprint(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s %s (%s)\n", tool, Version, runtime.Version())
}
