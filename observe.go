package goldfish

import (
	"context"
	"io"

	"goldfish/internal/obs"
)

// Observer is the handle to the observability side channel: an instrument
// registry (counters, gauges, histograms with a snapshot API) plus optional
// span tracing. Observability never feeds reports — scenario and experiment
// artifacts stay byte-deterministic with or without an Observer attached —
// and a nil *Observer is a valid no-op receiver everywhere.
type Observer = obs.Observer

// NewObserver builds an Observer. When trace is non-nil, span start/end and
// point events are written to it as JSON lines (one object per line); a nil
// trace collects metrics only. Drive a run with it via WithObservability and
// read the results with Observer.Snapshot or Observer.WriteSnapshot.
func NewObserver(trace io.Writer) *Observer { return obs.New(trace) }

// WithObservability returns ctx carrying o. The federated round engine, the
// scenario matrix executor and the unlearning pipeline all pick the Observer
// up from the context they run under; with none attached (or o nil) every
// instrumentation point is a no-op.
func WithObservability(ctx context.Context, o *Observer) context.Context {
	return obs.NewContext(ctx, o)
}
