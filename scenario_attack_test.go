package goldfish

import (
	"context"
	"strings"
	"testing"

	"goldfish/internal/scenario"
)

// attackSweepSpec is a 3-probe sweep over every registered unlearning
// strategy: poison embeds for 4 rounds, the poisoned rows are deleted, and
// 2 recovery rounds follow.
func attackSweepSpec(strategies []string) ScenarioSpec {
	return ScenarioSpec{
		Name:    "efficacy",
		Dataset: "mnist",
		Scale:   "tiny",
		Clients: 3,
		Rounds:  6,
		Attack: &scenario.AttackSpec{
			Types:       []string{"backdoor", "label-flip", "targeted-class"},
			Client:      0,
			Fraction:    0.5,
			TargetLabel: 0,
			SourceClass: 1,
			Strength:    0.6,
		},
		Schedule: []scenario.DeletionSpec{
			{Round: 4, Type: scenario.DeleteSample, Client: 0, Target: scenario.TargetPoisoned},
		},
		Strategies: strategies,
		Seeds:      []int64{1},
	}
}

// TestAttackRegistryPublicSurface locks the attack-probe registry API:
// the built-in probe styles are registered, NewAttack resolves them, and a
// custom probe registered via RegisterAttack becomes selectable by scenario
// specs exactly like a custom unlearner does.
func TestAttackRegistryPublicSurface(t *testing.T) {
	types := AttackTypes()
	for _, want := range []string{"backdoor", "label-flip", "targeted-class"} {
		found := false
		for _, got := range types {
			found = found || got == want
		}
		if !found {
			t.Errorf("AttackTypes() = %v, missing %q", types, want)
		}
	}
	a, err := NewAttack("label-flip")
	if err != nil || a.Name() != "label-flip" {
		t.Fatalf("NewAttack(label-flip) = %v, %v", a, err)
	}
	if _, err := NewAttack("no-such-probe"); err == nil {
		t.Error("NewAttack accepted an unknown probe")
	}
	RegisterAttack("custom-probe", func() Attack { a, _ := NewAttack("label-flip"); return a })
	spec := attackSweepSpec([]string{"goldfish"})
	spec.Attack.Types = []string{"custom-probe"}
	if err := ValidateScenario(spec); err != nil {
		t.Errorf("spec selecting a registered custom probe rejected: %v", err)
	}
}

// TestUnlearningDropsEveryAttackProbe is the paper's efficacy claim as a
// unit test, broadened across probe styles: for EVERY (attack type ×
// strategy) pair on the tiny smoke preset, the attack success rate measured
// by that attack's own probe must fall below a threshold after the poisoned
// rows are unlearned — and any attack that took hold (pre-deletion success
// ≥ 0.3) must lose at least half its success rate. The matrix is fully
// seeded, so these are exact deterministic bounds, not statistical ones.
func TestUnlearningDropsEveryAttackProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a 12-cell matrix")
	}
	const postThreshold = 0.2
	spec := attackSweepSpec(Unlearners()) // fisher, goldfish, incompetent-teacher, retrain
	rep, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Strategies) * 3; len(rep.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), want)
	}
	embedded := 0
	for _, c := range rep.Cells {
		name := c.Strategy + "/" + c.Attack
		if c.PreDeletionASR == nil || c.ASR == nil {
			t.Errorf("%s: missing attack success rates: pre=%v post=%v", name, c.PreDeletionASR, c.ASR)
			continue
		}
		pre, post := *c.PreDeletionASR, *c.ASR
		if post > postThreshold {
			t.Errorf("%s: post-unlearning success rate %.4f above threshold %g (pre %.4f)",
				name, post, postThreshold, pre)
		}
		if pre >= 0.3 {
			embedded++
			if post >= pre/2 {
				t.Errorf("%s: success rate only fell %.4f → %.4f; unlearning must at least halve an embedded attack",
					name, pre, post)
			}
		}
	}
	// The test is vacuous unless some attacks actually took hold before the
	// deletion; the backdoor embeds on every strategy at these settings.
	if embedded < len(spec.Strategies) {
		t.Errorf("only %d cells embedded their attack (pre ≥ 0.3); expected at least the %d backdoor cells",
			embedded, len(spec.Strategies))
	}
}

// TestPreDeletionASRSurvivesMidRunDeletion is the ASR-resurfacing
// regression test: when an attack is configured and a deletion schedule
// removes the poisoned rows mid-run, the report must carry BOTH snapshots —
// PreDeletionASR (the probe before the deletion fired) and ASR (after) —
// for every attack type, and the nil-guarded ASR paths in report rendering
// and diffing must handle the per-type probes without panicking.
func TestPreDeletionASRSurvivesMidRunDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a 3-cell matrix")
	}
	spec := attackSweepSpec([]string{"goldfish"})
	spec.Rounds = 3
	spec.Schedule[0].Round = 2
	rep, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.PreDeletionASR == nil {
			t.Errorf("%s/%s: PreDeletionASR is nil despite a configured attack and a mid-run poisoned deletion",
				c.Strategy, c.Attack)
		}
		if c.ASR == nil {
			t.Errorf("%s/%s: ASR is nil despite a configured attack", c.Strategy, c.Attack)
		}
		if c.RemovedRows == 0 {
			t.Errorf("%s/%s: deletion schedule removed nothing", c.Strategy, c.Attack)
		}
	}
	var sb strings.Builder
	rep.RenderText(&sb)
	for _, typ := range spec.AttackList() {
		if !strings.Contains(sb.String(), typ) {
			t.Errorf("RenderText omits attack %q:\n%s", typ, sb.String())
		}
	}
	// Self-diff exercises the nil-guarded ASR delta and per-attack grouping
	// paths; a report diffed against itself must never regress.
	d, err := DiffScenarioReports(rep, rep, ScenarioDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.HasRegressions() {
		t.Errorf("self-diff regressed: %+v", d.Regressions())
	}
	asrTests := 0
	for _, mt := range d.Tests {
		if mt.Metric == scenario.MetricASR && mt.Attack != "" {
			asrTests++
		}
	}
	if asrTests != 3 {
		t.Errorf("diff ran %d per-attack ASR tests, want 3 (one per probe style)", asrTests)
	}
}
