package goldfish

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden scenario reports under testdata/golden")

// TestGoldenReportsPerAttackType pins the report byte format per attack
// probe: each committed spec under testdata/golden runs end to end and the
// resulting JSON must equal the committed report byte for byte, so report
// schema or metric drift fails `go test` locally instead of surfacing only
// in the CI shell gate. After an intentional format or metric change,
// regenerate with:
//
//	go test -run TestGoldenReportsPerAttackType -update .
func TestGoldenReportsPerAttackType(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a 2-cell matrix per attack type")
	}
	for _, typ := range []string{"backdoor", "label-flip", "targeted-class"} {
		t.Run(typ, func(t *testing.T) {
			specPath := filepath.Join("testdata", "golden", typ+".json")
			goldenPath := filepath.Join("testdata", "golden", typ+".report.json")
			spec, err := LoadScenario(specPath)
			if err != nil {
				t.Fatal(err)
			}
			if got := spec.AttackList(); len(got) != 1 || got[0] != typ {
				t.Fatalf("%s selects attacks %v, want [%s]", specPath, got, typ)
			}
			rep, err := RunScenario(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Complete(); err != nil {
				t.Fatal(err)
			}
			got, err := rep.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (regenerate with `go test -run TestGoldenReportsPerAttackType -update .`)", err)
			}
			// The goldens are generated on amd64 (the CI architecture).
			// Architectures that fuse multiply-adds (e.g. arm64) can round
			// training float ops differently, so byte equality is only
			// asserted where the goldens were produced; the structural
			// checks below still run everywhere.
			if runtime.GOARCH != "amd64" {
				t.Logf("skipping byte comparison on %s (goldens generated on amd64)", runtime.GOARCH)
			} else if !bytes.Equal(got, want) {
				t.Errorf("%s: report bytes drifted from the golden file; if the change is intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
					typ, got, want)
			}
			// The attack axis must be visible in every row, and the probe
			// must have produced a success rate on every cell.
			for _, c := range rep.Cells {
				if c.Attack != typ {
					t.Errorf("cell %s/seed %d carries attack %q, want %q", c.Strategy, c.Seed, c.Attack, typ)
				}
				if c.ASR == nil || c.PreDeletionASR == nil {
					t.Errorf("cell %s/seed %d missing attack success rates", c.Strategy, c.Seed)
				}
			}
		})
	}
}
