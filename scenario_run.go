package goldfish

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"goldfish/internal/attack"
	"goldfish/internal/data"
	"goldfish/internal/scenario"
)

// Scenario types re-exported from the declarative experiment engine
// (internal/scenario): a ScenarioSpec describes a config-driven unlearning
// experiment matrix — dataset, partitioner, optional attack injection (one
// or several probe styles from the attack registry), a deletion schedule,
// and the strategy × seed × shard × attack axes — and a ScenarioReport is
// its deterministic structured outcome.
type (
	// ScenarioSpec is a declarative unlearning experiment matrix.
	ScenarioSpec = scenario.Spec
	// ScenarioReport is the structured, deterministic outcome of RunScenario.
	ScenarioReport = scenario.Report
	// ScenarioCell identifies one matrix point (strategy × seed × shards ×
	// attack).
	ScenarioCell = scenario.Cell
	// ScenarioDiff is the cell-by-cell comparison of two scenario reports.
	ScenarioDiff = scenario.DiffReport
	// ScenarioDiffOptions tunes DiffScenarioReports (significance level,
	// practical-delta floor).
	ScenarioDiffOptions = scenario.DiffOptions
	// ScenarioShardRef identifies one machine shard ("i/n") of a
	// distributed matrix run.
	ScenarioShardRef = scenario.ShardRef
)

// ParseScenarioShard parses an "i/n" machine-shard reference with
// 1 ≤ i ≤ n, as accepted by RunScenarioShard and the -shard CLI flag.
func ParseScenarioShard(s string) (ScenarioShardRef, error) { return scenario.ParseShardRef(s) }

// LoadScenario reads and validates a scenario spec file.
func LoadScenario(path string) (ScenarioSpec, error) { return scenario.Load(path) }

// ParseScenario decodes and validates a scenario spec from JSON bytes.
func ParseScenario(b []byte) (ScenarioSpec, error) { return scenario.Parse(b) }

// LoadScenarioReport reads a report file written by a scenario run — full,
// one machine shard, or the completed part of an interrupted run.
func LoadScenarioReport(path string) (*ScenarioReport, error) { return scenario.LoadReport(path) }

// MergeScenarioReports recombines partial reports (machine shards from
// RunScenarioShard and/or the completed prefix of an interrupted run) into a
// report byte-identical to a single-machine RunScenario of the same spec. It
// validates that every input embeds the same spec and that the inputs cover
// the matrix exactly once, erroring on overlapping or missing cells.
func MergeScenarioReports(reports ...*ScenarioReport) (*ScenarioReport, error) {
	return scenario.Merge(reports...)
}

// DiffScenarioReports compares two reports cell-by-cell: accuracy, attack
// success rate and membership-gap deltas over the matrix intersection, plus
// per-(strategy, τ, attack, metric) Welch t-tests across the seed axis. A committed
// baseline report can thereby gate CI: ScenarioDiff.HasRegressions reports
// any statistically significant worsening or newly failing cell, and a
// report diffed against itself never regresses.
func DiffScenarioReports(oldR, newR *ScenarioReport, opts ScenarioDiffOptions) (*ScenarioDiff, error) {
	return scenario.Diff(oldR, newR, opts)
}

// ValidateScenario validates a spec beyond ScenarioSpec.Validate: it also
// resolves the preset so a deletion schedule reaching past a preset-derived
// round budget is rejected up front instead of silently never executing (or
// failing every cell at run time).
func ValidateScenario(spec ScenarioSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(spec.Schedule) == 0 || spec.Rounds > 0 {
		// An explicit budget was already checked against the schedule.
		return nil
	}
	p, err := NewPresetWithArch(spec.Dataset, Arch(spec.Arch), Scale(spec.Scale), spec.SeedList()[0])
	if err != nil {
		// Unresolvable presets (unknown dataset/arch) surface as cell
		// errors with full context; don't duplicate that reporting here.
		return nil
	}
	for i, d := range spec.Schedule {
		if d.Round > p.Rounds {
			return fmt.Errorf("goldfish: schedule[%d]: round %d beyond the preset's resolved budget of %d rounds",
				i, d.Round, p.Rounds)
		}
	}
	return nil
}

// RunScenario executes the spec's full strategy × seed × shard × attack
// matrix concurrently on a bounded worker pool. Every cell runs end to end
// through goldfish.New and the registered unlearner strategies: generate the
// preset's data at the cell seed, partition it, optionally inject the cell's
// attack probe (backdoor, label-flip, targeted-class, or any registered
// type), train with the scheduled sample-/class-/client-level deletion
// requests applied at their rounds, and evaluate the final model (accuracy,
// the attack type's own success-rate probe, membership gap, and model
// divergence plus confidence t-test against the "retrain" reference cell of
// the same seed, shard count and attack type when the strategy axis
// includes it).
//
// Cells sharing a seed see identical data and partitions (poisoning
// additionally depends on the cell's attack type), and every cell derives
// all randomness from spec constants, its seed and its attack type, so the
// report is deterministic: two runs of the same spec marshal to
// byte-identical JSON. A failing cell is recorded in its row's Error field
// rather than aborting the matrix; Report.Complete reports whether the full
// matrix succeeded.
// On ctx cancellation RunScenario returns BOTH a non-nil partial report —
// holding the cells that finished deterministically, marked Incomplete — and
// the context error, so an interrupted run's finished work can be persisted
// and later recombined with MergeScenarioReports.
func RunScenario(ctx context.Context, spec ScenarioSpec) (*ScenarioReport, error) {
	return RunScenarioShard(ctx, spec, "")
}

// RunScenarioShard runs one machine shard of the spec's matrix: shard is
// "i/n" (or "" for the whole matrix), selecting the deterministic subset
// from ScenarioSpec.ShardCells. Each shard co-locates every "retrain"
// reference cell with the cells compared against it, so VsRetrain is
// populated inside every partial and MergeScenarioReports reassembles the
// shards into a report byte-identical to a single-machine run. Like
// RunScenario, cancellation returns a partial Incomplete report alongside
// the context error.
func RunScenarioShard(ctx context.Context, spec ScenarioSpec, shard string) (*ScenarioReport, error) {
	if err := ValidateScenario(spec); err != nil {
		return nil, err
	}
	var ref scenario.ShardRef
	if shard != "" {
		var err error
		if ref, err = scenario.ParseShardRef(shard); err != nil {
			return nil, err
		}
	}
	cells, err := spec.ShardCells(ref)
	if err != nil {
		return nil, err
	}
	outcomes, execErr := scenario.ExecuteCells(ctx, spec, cells, func(ctx context.Context, cell ScenarioCell) (scenario.Outcome, error) {
		return runScenarioCell(ctx, spec, cell)
	})
	if execErr != nil && outcomes == nil {
		return nil, execErr
	}
	rep, err := scenario.AssembleCells(spec, ref, cells, outcomes, newScenarioComparer(spec))
	if err != nil {
		return nil, err
	}
	if execErr != nil && !rep.Incomplete {
		// Cancellation landed after every cell had already finished: the
		// report is exactly what an uninterrupted run would have produced,
		// so don't surface the interrupt.
		execErr = nil
	}
	return rep, execErr
}

// scenarioSetup materializes the seed- and attack-determined,
// strategy-independent part of a cell: preset, train/test data, partitions,
// the poisoned rows and the attack's success-rate probe.
type scenarioSetup struct {
	preset   Preset
	test     *Dataset
	parts    []*Dataset
	poisoned []int
	prober   AttackProber
	rounds   int
}

// newScenarioSetup resolves and generates everything cells of one (seed,
// attack type) share. All randomness derives from spec constants, the seed
// and the attack type; cells of one seed see identical data and partitions
// before poisoning.
func newScenarioSetup(spec ScenarioSpec, seed int64, attackType string) (*scenarioSetup, error) {
	p, err := NewPresetWithArch(spec.Dataset, Arch(spec.Arch), Scale(spec.Scale), seed)
	if err != nil {
		return nil, err
	}
	if spec.Rounds > 0 {
		p.Rounds = spec.Rounds
	}
	if spec.Clients > 0 {
		p.Clients = spec.Clients
	}
	train, test, err := p.Generate()
	if err != nil {
		return nil, err
	}
	prng := rand.New(rand.NewSource(seed*7717 + 11))
	var parts []*Dataset
	ptype := scenario.PartitionIID
	if spec.Partition != nil && spec.Partition.Type != "" {
		ptype = spec.Partition.Type
	}
	switch ptype {
	case scenario.PartitionIID:
		parts, err = data.PartitionIID(train, p.Clients, prng)
	case scenario.PartitionHeterogeneous:
		parts, err = data.PartitionHeterogeneous(train, p.Clients, spec.Partition.Skew, prng)
	case scenario.PartitionDirichlet:
		parts, err = data.PartitionDirichlet(train, p.Clients, spec.Partition.Alpha, prng)
	default:
		err = fmt.Errorf("goldfish: unknown partitioner %q", ptype)
	}
	if err != nil {
		return nil, err
	}
	s := &scenarioSetup{preset: p, test: test, parts: parts, rounds: p.Rounds}
	if a := spec.Attack; a != nil && attackType != "" {
		if a.Client >= len(parts) {
			return nil, fmt.Errorf("goldfish: attack client %d out of range [0,%d)", a.Client, len(parts))
		}
		atk, err := attack.New(attackType)
		if err != nil {
			return nil, fmt.Errorf("goldfish: %w", err)
		}
		arng := rand.New(rand.NewSource(seed*9949 + 23))
		s.poisoned, err = atk.Poison(parts[a.Client], a.Config(), arng)
		if err != nil {
			return nil, fmt.Errorf("goldfish: %s: %w", attackType, err)
		}
		s.prober, err = atk.NewProber(test, a.Config())
		if err != nil {
			return nil, fmt.Errorf("goldfish: %s: %w", attackType, err)
		}
	}
	return s, nil
}

// runScenarioCell executes one matrix cell end to end.
func runScenarioCell(ctx context.Context, spec ScenarioSpec, cell ScenarioCell) (scenario.Outcome, error) {
	var out scenario.Outcome
	s, err := newScenarioSetup(spec, cell.Seed, cell.Attack)
	if err != nil {
		return out, err
	}
	for _, d := range spec.Schedule {
		if d.Round > s.rounds {
			return out, fmt.Errorf("goldfish: schedule round %d beyond budget %d", d.Round, s.rounds)
		}
	}
	cfg := s.preset.ClientConfig()
	cfg.Shards = cell.Shards
	e, err := New(
		WithPreset(s.preset),
		WithPartitions(s.parts),
		WithClientConfig(cfg),
		WithUnlearner(cell.Strategy),
		WithSeed(cell.Seed),
	)
	if err != nil {
		return out, err
	}

	// The engine's federation is the single source of truth for deletion
	// state (original partitions, removed rows); the runner only tracks the
	// attacked client's current position — client-level departures shift
	// later positions down — and accumulates the forget subsets for the
	// membership-gap probe.
	attackPos := -1
	if spec.Attack != nil {
		attackPos = spec.Attack.Client
	}
	var forget []*Dataset
	srng := rand.New(rand.NewSource(cell.Seed*6271 + 31))
	res := &out.Result

	snapshotPre := func() error {
		acc, err := e.TestAccuracy(s.test)
		if err != nil {
			return err
		}
		res.PreDeletionAccuracy = &acc
		if s.prober != nil {
			net, err := e.GlobalNet()
			if err != nil {
				return err
			}
			asr := s.prober.SuccessRate(net)
			res.PreDeletionASR = &asr
		}
		return nil
	}

	completed := 0
	for k := 0; k < len(spec.Schedule); {
		round := spec.Schedule[k].Round
		if seg := round - completed; seg > 0 {
			if err := e.Run(ctx, seg); err != nil {
				return out, err
			}
			completed = round
		}
		if res.PreDeletionAccuracy == nil {
			if err := snapshotPre(); err != nil {
				return out, err
			}
		}
		for ; k < len(spec.Schedule) && spec.Schedule[k].Round == round; k++ {
			d := spec.Schedule[k]
			switch d.Type {
			case scenario.DeleteSample:
				client := d.Client
				if client < 0 || client >= e.NumClients() {
					return out, fmt.Errorf("goldfish: schedule client %d out of range [0,%d)", client, e.NumClients())
				}
				var rows []int
				switch d.Target {
				case scenario.TargetPoisoned:
					// The poisoned rows follow the attacked client, whose
					// position may have shifted since the spec was written.
					if attackPos < 0 {
						return out, fmt.Errorf("goldfish: schedule round %d: the attacked client already departed", d.Round)
					}
					client = attackPos
					rem := make(map[int]bool, len(s.poisoned))
					for _, r := range e.RemainingRows(client) {
						rem[r] = true
					}
					for _, r := range s.poisoned {
						if rem[r] {
							rows = append(rows, r)
						}
					}
				case scenario.TargetRandom:
					rem := e.RemainingRows(client)
					n := int(float64(len(rem))*d.Fraction + 0.5)
					if n < 1 {
						n = 1
					}
					if n > len(rem) {
						n = len(rem)
					}
					srng.Shuffle(len(rem), func(i, j int) { rem[i], rem[j] = rem[j], rem[i] })
					rows = rem[:n]
				default:
					rows = d.Rows
				}
				if len(rows) == 0 {
					return out, fmt.Errorf("goldfish: schedule round %d: no rows to delete on client %d", d.Round, client)
				}
				if err := e.RequestSampleDeletion(client, rows); err != nil {
					return out, err
				}
				forget = append(forget, e.Partitions()[client].Subset(rows))
				res.RemovedRows += len(rows)
			case scenario.DeleteClass:
				byClient, err := e.RequestClassDeletion(d.Class)
				if err != nil {
					return out, err
				}
				for i := 0; i < e.NumClients(); i++ {
					rows := byClient[i]
					if len(rows) == 0 {
						continue
					}
					forget = append(forget, e.Partitions()[i].Subset(rows))
					res.RemovedRows += len(rows)
				}
			case scenario.DeleteClient:
				if d.Client >= e.NumClients() {
					return out, fmt.Errorf("goldfish: schedule client %d out of range [0,%d)", d.Client, e.NumClients())
				}
				if rows := e.RemainingRows(d.Client); len(rows) > 0 {
					forget = append(forget, e.Partitions()[d.Client].Subset(rows))
					res.RemovedRows += len(rows)
				}
				if err := e.RemoveClient(d.Client, true); err != nil {
					return out, err
				}
				switch {
				case d.Client == attackPos:
					attackPos = -1
				case d.Client < attackPos:
					attackPos--
				}
				res.RemovedClients++
			}
		}
	}
	if seg := s.rounds - completed; seg > 0 {
		if err := e.Run(ctx, seg); err != nil {
			return out, err
		}
	}
	res.Rounds = e.Round()

	net, err := e.GlobalNet()
	if err != nil {
		return out, err
	}
	res.Accuracy = Accuracy(net, s.test)
	if s.prober != nil {
		asr := s.prober.SuccessRate(net)
		res.ASR = &asr
	}
	if len(forget) > 0 {
		all := forget[0]
		for _, f := range forget[1:] {
			if all, err = all.Concat(f); err != nil {
				return out, err
			}
		}
		gap := MembershipGap(net, all, s.test)
		res.MembershipGap = &gap
	}
	out.State = e.Global()
	return out, nil
}

// newScenarioComparer builds the cross-cell comparison callback: model
// divergence and confidence t-test against the retrain reference, over the
// seed's test set. Probe data and evaluation networks are cached per seed.
func newScenarioComparer(spec ScenarioSpec) scenario.CompareFunc {
	type probe struct {
		test *Dataset
		cfg  ModelConfig
	}
	var mu sync.Mutex
	cache := map[int64]*probe{}
	get := func(seed int64) (*probe, error) {
		mu.Lock()
		defer mu.Unlock()
		if p, ok := cache[seed]; ok {
			return p, nil
		}
		ps, err := NewPresetWithArch(spec.Dataset, Arch(spec.Arch), Scale(spec.Scale), seed)
		if err != nil {
			return nil, err
		}
		_, test, err := ps.Generate()
		if err != nil {
			return nil, err
		}
		p := &probe{test: test, cfg: ps.Model}
		cache[seed] = p
		return p, nil
	}
	return func(cell ScenarioCell, state, ref []float64) (*scenario.Comparison, error) {
		p, err := get(cell.Seed)
		if err != nil {
			return nil, err
		}
		a, err := BuildModel(p.cfg)
		if err != nil {
			return nil, err
		}
		b, err := BuildModel(p.cfg)
		if err != nil {
			return nil, err
		}
		if err := a.SetStateVector(state); err != nil {
			return nil, err
		}
		if err := b.SetStateVector(ref); err != nil {
			return nil, err
		}
		div, err := ModelDivergence(a, b, p.test)
		if err != nil {
			return nil, err
		}
		tt, err := ConfidenceTTest(a, b, p.test)
		if err != nil {
			return nil, err
		}
		return &scenario.Comparison{JSD: div.JSD, L2: div.L2, T: tt.T, P: tt.P}, nil
	}
}
