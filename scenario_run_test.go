package goldfish

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"goldfish/internal/scenario"
)

// tinyScenario is a fast 2-strategy × 2-seed matrix with a backdoor attack
// and a sample-level deletion, the smallest spec that exercises attack
// injection, the schedule, and the retrain-reference comparison.
func tinyScenario() ScenarioSpec {
	return ScenarioSpec{
		Name:    "unit",
		Dataset: "mnist",
		Scale:   "tiny",
		Clients: 3,
		Rounds:  3,
		Attack:  &scenario.AttackSpec{Type: "backdoor", Client: 0, Fraction: 0.3, TargetLabel: 0},
		Schedule: []scenario.DeletionSpec{
			{Round: 2, Type: scenario.DeleteSample, Client: 0, Target: scenario.TargetPoisoned},
		},
		Strategies: []string{"goldfish", "retrain"},
		Seeds:      []int64{1, 2},
	}
}

func TestRunScenarioMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a 4-cell matrix")
	}
	ctx := context.Background()
	spec := tinyScenario()
	rep, err := RunScenario(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err != nil {
		t.Fatalf("matrix incomplete: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Rounds != 3 {
			t.Errorf("%s/seed %d ran %d rounds, want 3", c.Strategy, c.Seed, c.Rounds)
		}
		if c.RemovedRows == 0 {
			t.Errorf("%s/seed %d removed no rows", c.Strategy, c.Seed)
		}
		if c.Accuracy <= 0 {
			t.Errorf("%s/seed %d accuracy %g", c.Strategy, c.Seed, c.Accuracy)
		}
		if c.ASR == nil || c.PreDeletionASR == nil || c.PreDeletionAccuracy == nil {
			t.Errorf("%s/seed %d missing attack metrics: %+v", c.Strategy, c.Seed, c)
		}
		if c.MembershipGap == nil {
			t.Errorf("%s/seed %d missing membership gap", c.Strategy, c.Seed)
		}
		if c.Strategy == "goldfish" && c.VsRetrain == nil {
			t.Errorf("goldfish/seed %d missing retrain comparison", c.Seed)
		}
		if c.Strategy == "retrain" && c.VsRetrain != nil {
			t.Errorf("retrain/seed %d compared against itself", c.Seed)
		}
	}
	// Cells of one seed share data and poisoning, so the pre-deletion
	// metrics may differ only through the strategy's training — but the two
	// SEEDS must differ somewhere or the seed axis is dead.
	if *rep.Cells[0].PreDeletionAccuracy == *rep.Cells[1].PreDeletionAccuracy &&
		rep.Cells[0].Accuracy == rep.Cells[1].Accuracy {
		t.Error("seeds 1 and 2 produced identical goldfish cells; seed axis is not wired through")
	}

	a, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: a second run of the same spec is byte-identical.
	rep2, err := RunScenario(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep2.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two runs of the same spec produced different report bytes")
	}
}

func TestRunScenarioRecordsCellFailures(t *testing.T) {
	spec := tinyScenario()
	spec.Strategies = []string{"goldfish", "no-such-strategy"}
	spec.Schedule = nil
	spec.Attack = nil
	spec.Rounds = 1
	spec.Seeds = []int64{1}
	rep, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err == nil {
		t.Fatal("matrix with an unknown strategy reported complete")
	}
	var failed bool
	for _, c := range rep.Cells {
		if c.Strategy == "no-such-strategy" {
			failed = c.Error != ""
			if !strings.Contains(c.Error, "unknown strategy") {
				t.Errorf("error %q does not name the unknown strategy", c.Error)
			}
		}
	}
	if !failed {
		t.Error("failing cell not recorded")
	}
}

func TestRunScenarioValidatesSpec(t *testing.T) {
	if _, err := RunScenario(context.Background(), ScenarioSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	// A schedule reaching past the PRESET-resolved round budget (Rounds
	// unset) must be rejected up front, not silently skipped or left to fail
	// every cell at run time.
	spec := tinyScenario()
	spec.Rounds = 0 // preset default (6 at tiny) — schedule round 2 still valid
	spec.Schedule[0].Round = 99
	if err := ValidateScenario(spec); err == nil || !strings.Contains(err.Error(), "resolved budget") {
		t.Errorf("ValidateScenario = %v, want a resolved-budget error", err)
	}
	if _, err := RunScenario(context.Background(), spec); err == nil {
		t.Error("RunScenario accepted a schedule beyond the resolved budget")
	}
	spec.Schedule[0].Round = 2
	if err := ValidateScenario(spec); err != nil {
		t.Errorf("in-budget schedule rejected: %v", err)
	}
}

// TestRunScenarioShardMergePublicSurface is the public acceptance path:
// -shard 1/2 + -shard 2/2 + merge must be byte-identical to the unsharded
// run, with VsRetrain populated in every partial.
func TestRunScenarioShardMergePublicSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a 4-cell matrix three times")
	}
	ctx := context.Background()
	spec := tinyScenario()
	full, err := RunScenario(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var parts []*ScenarioReport
	for i := 1; i <= 2; i++ {
		p, err := RunScenarioShard(ctx, spec, fmt.Sprintf("%d/2", i))
		if err != nil {
			t.Fatalf("shard %d/2: %v", i, err)
		}
		if err := p.Complete(); err != nil {
			t.Fatalf("shard %d/2 incomplete: %v", i, err)
		}
		if len(p.Cells) == 0 {
			t.Fatalf("shard %d/2 is empty", i)
		}
		for _, row := range p.Cells {
			if row.Strategy != "retrain" && row.VsRetrain == nil {
				t.Errorf("shard %d/2: %s/seed %d missing VsRetrain in the partial", i, row.Strategy, row.Seed)
			}
		}
		parts = append(parts, p)
	}
	merged, err := MergeScenarioReports(parts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merged shard reports differ from the single-machine report bytes")
	}
	if _, err := RunScenarioShard(ctx, spec, "5/2"); err == nil {
		t.Error("out-of-range shard accepted")
	}

	// Self-diff of a real report: no regressions, exit path stays green.
	d, err := DiffScenarioReports(full, merged, ScenarioDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.HasRegressions() {
		t.Errorf("self-diff of a real report regressed: %+v", d.Regressions())
	}
}

func TestParseScenarioPublicSurface(t *testing.T) {
	spec, err := ParseScenario([]byte(`{"dataset":"mnist","strategies":["goldfish"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dataset != "mnist" {
		t.Errorf("Dataset = %q", spec.Dataset)
	}
	if _, err := ParseScenario([]byte(`{"strategies":["goldfish"]}`)); err == nil {
		t.Error("dataset-less spec accepted")
	}
	if _, err := LoadScenario("/nonexistent/spec.json"); err == nil {
		t.Error("missing file accepted")
	}
}

// Regression: a client-level departure before a "poisoned"-target deletion
// shifts client positions; the poisoned rows must follow the attacked
// client to its new position, not hit whichever client now sits at the
// spec-time index.
func TestRunScenarioPoisonedDeletionTracksShiftedClient(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a small matrix")
	}
	spec := tinyScenario()
	spec.Clients = 4
	spec.Strategies = []string{"goldfish"}
	spec.Seeds = []int64{1}
	spec.Attack.Client = 1
	spec.Schedule = []scenario.DeletionSpec{
		{Round: 1, Type: scenario.DeleteClient, Client: 0},
		{Round: 2, Type: scenario.DeleteSample, Client: 1, Target: scenario.TargetPoisoned},
	}
	rep, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err != nil {
		t.Fatalf("matrix incomplete: %v", err)
	}
	c := rep.Cells[0]
	if c.RemovedClients != 1 {
		t.Errorf("RemovedClients = %d, want 1", c.RemovedClients)
	}
	// The forget set must include the departed client's data AND the
	// poisoned rows of the (shifted) attacked client.
	if c.RemovedRows == 0 {
		t.Error("no rows removed")
	}

	// If the attacked client itself departs, a later poisoned deletion has
	// no target and the cell must fail loudly instead of deleting from a
	// bystander.
	spec.Schedule = []scenario.DeletionSpec{
		{Round: 1, Type: scenario.DeleteClient, Client: 1},
		{Round: 2, Type: scenario.DeleteSample, Client: 1, Target: scenario.TargetPoisoned},
	}
	rep, err = RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(); err == nil {
		t.Error("poisoned deletion after the attacked client departed reported complete")
	} else if !strings.Contains(err.Error(), "departed") {
		t.Errorf("unexpected failure: %v", err)
	}
}

func TestParseScenarioShardPublic(t *testing.T) {
	ref, err := ParseScenarioShard("2/3")
	if err != nil || ref.Index != 2 || ref.Count != 3 {
		t.Errorf("ParseScenarioShard = %+v, %v", ref, err)
	}
	if _, err := ParseScenarioShard("4/3"); err == nil {
		t.Error("out-of-range shard accepted")
	}
}
