package goldfish

import (
	"goldfish/internal/serve"
)

// Deletion-request service: run an Engine as a long-lived unlearning
// service. Deletion requests (sample rows, whole classes, whole clients)
// enter a bounded queue and fold into the federation in one coalesced batch
// at each round boundary; every accepted request is tracked as a ticket
// through queued → applied → recovered, with forgetting latency recorded in
// the serve.* observability histograms. See internal/serve for the
// mechanics and cmd/goldfish-server's -serve mode for the HTTP surface.

// DeletionRequest is one deletion request submitted to a DeletionService.
type DeletionRequest = serve.Request

// The three deletion-request kinds.
const (
	// DeleteSample removes specific rows of one client's original dataset.
	DeleteSample = serve.KindSample
	// DeleteClass removes every remaining sample of one label class.
	DeleteClass = serve.KindClass
	// DeleteClient removes a participant entirely, unlearning its data.
	DeleteClient = serve.KindClient
)

// DeletionTicket is the auditable record of one accepted deletion request.
type DeletionTicket = serve.Ticket

// DeletionService batches deletion requests into per-round unlearning
// steps. Build one with Engine.NewDeletionService.
type DeletionService = serve.Service

// DeletionServiceStats is a point-in-time service summary: queue state,
// request counters and forgetting-latency quantiles.
type DeletionServiceStats = serve.Stats

// ErrDeletionQueueFull is returned by DeletionService.Enqueue when the
// ingest queue is at capacity; retry after roughly one round.
var ErrDeletionQueueFull = serve.ErrQueueFull

// DeletionServiceConfig configures Engine.NewDeletionService.
type DeletionServiceConfig struct {
	// QueueCap bounds the number of queued requests; Enqueue rejects with
	// ErrDeletionQueueFull beyond it. Defaults to 64.
	QueueCap int
	// RecoveryRounds is how many rounds after application a request counts
	// as recovered ("forgotten"). Defaults to 1.
	RecoveryRounds int
	// Observer receives the serve.* instruments; pass the observer the
	// run's context carries so all metrics land in one registry. Nil uses
	// a private metrics-only observer.
	Observer *Observer
}

// NewDeletionService attaches a deletion-request service to the engine's
// round boundary: requests enqueued from any goroutine are coalesced and
// applied between rounds while Run executes. Call the service's Settle
// after the final Run so the last batch's recoveries are counted.
func (e *Engine) NewDeletionService(cfg DeletionServiceConfig) (*DeletionService, error) {
	return serve.New(serve.Config{
		Federation:     e.fed,
		QueueCap:       cfg.QueueCap,
		RecoveryRounds: cfg.RecoveryRounds,
		Observer:       cfg.Observer,
	})
}
