package goldfish

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"goldfish/internal/data"
	"goldfish/internal/unlearn"
)

// engineConfig collects the functional options before New resolves them.
type engineConfig struct {
	dataset    string
	scale      Scale
	arch       Arch
	preset     *Preset
	seed       int64
	clients    int
	parts      []*Dataset
	clientCfg  *Config
	unlearner  string
	strategy   Unlearner
	agg        Aggregator
	serverTest *Dataset
	minClients int
	fraction   float64
	timeout    time.Duration
	sampleSeed int64
	transport  Transport
	hook       func(RoundStats)
}

// Option configures an Engine built by New.
type Option func(*engineConfig) error

// WithDataset selects one of the paper's dataset presets ("mnist",
// "fmnist", "cifar10", "cifar100") at the given experiment scale; the
// preset supplies the architecture, hyperparameters, default client count
// and round budget. Combine with WithSeed, WithArch, and optionally
// WithPartitions to train on custom splits of the preset's data.
func WithDataset(name string, scale Scale) Option {
	return func(c *engineConfig) error {
		if name == "" {
			return fmt.Errorf("goldfish: WithDataset: empty dataset name")
		}
		c.dataset, c.scale = name, scale
		return nil
	}
}

// WithPreset uses an already-resolved preset (see NewPreset), keeping its
// hyperparameters and dimensions.
func WithPreset(p Preset) Option {
	return func(c *engineConfig) error {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("goldfish: WithPreset: %w", err)
		}
		c.preset = &p
		return nil
	}
}

// WithArch overrides the preset's dataset→architecture pairing (e.g.
// ResNet-32 on CIFAR-10 as in Fig. 4d).
func WithArch(a Arch) Option {
	return func(c *engineConfig) error {
		c.arch = a
		return nil
	}
}

// WithSeed fixes the seed driving data generation, partitioning and model
// initialization. 0 (the default) selects seed 1.
func WithSeed(seed int64) Option {
	return func(c *engineConfig) error {
		c.seed = seed
		return nil
	}
}

// WithClients sets the number of federation participants when the engine
// partitions the preset's data itself (default: the preset's client count,
// paper: 5). Ignored when WithPartitions supplies explicit splits.
func WithClients(n int) Option {
	return func(c *engineConfig) error {
		if n <= 0 {
			return fmt.Errorf("goldfish: WithClients: need a positive client count, got %d", n)
		}
		c.clients = n
		return nil
	}
}

// WithPartitions supplies explicit per-client datasets (e.g. poisoned or
// heterogeneous splits) instead of the engine's IID partitioning.
func WithPartitions(parts []*Dataset) Option {
	return func(c *engineConfig) error {
		if len(parts) == 0 {
			return fmt.Errorf("goldfish: WithPartitions: no partitions")
		}
		c.parts = parts
		return nil
	}
}

// WithClientConfig overrides the full per-client configuration (model,
// loss, optimizer, epochs, batch size, sharding). Required when no dataset
// preset is given; otherwise it replaces the preset's defaults.
func WithClientConfig(cfg Config) Option {
	return func(c *engineConfig) error {
		c.clientCfg = &cfg
		return nil
	}
}

// WithUnlearner selects the unlearning strategy by registry name:
// "goldfish" (the paper's procedure, default), "retrain" (B1), "fisher"
// (B2), "incompetent-teacher" (B3), or any name added via
// RegisterUnlearner.
func WithUnlearner(name string) Option {
	return func(c *engineConfig) error {
		if name == "" {
			return fmt.Errorf("goldfish: WithUnlearner: empty strategy name")
		}
		c.unlearner = name
		return nil
	}
}

// WithUnlearnerStrategy plugs in an Unlearner instance directly, bypassing
// the registry.
func WithUnlearnerStrategy(u Unlearner) Option {
	return func(c *engineConfig) error {
		if u == nil {
			return fmt.Errorf("goldfish: WithUnlearnerStrategy: nil strategy")
		}
		c.strategy = u
		return nil
	}
}

// WithAggregator selects how client uploads combine into the global model
// (FedAvg by default; AdaptiveWeight for the paper's Eqs. 12–13, which also
// needs a server test set — see WithServerTest).
func WithAggregator(a Aggregator) Option {
	return func(c *engineConfig) error {
		if a == nil {
			return fmt.Errorf("goldfish: WithAggregator: nil aggregator")
		}
		c.agg = a
		return nil
	}
}

// WithServerTest sets the central test set the server scores uploads on
// (MSE of Eq. 12) before adaptive-weight aggregation. With a dataset
// preset it defaults to the preset's test split when AdaptiveWeight is
// selected.
func WithServerTest(ds *Dataset) Option {
	return func(c *engineConfig) error {
		if ds == nil || ds.Len() == 0 {
			return fmt.Errorf("goldfish: WithServerTest: empty dataset")
		}
		c.serverTest = ds
		return nil
	}
}

// WithMinClients sets the minimum number of successful client updates per
// round; fewer aborts the round. Defaults to 1.
func WithMinClients(n int) Option {
	return func(c *engineConfig) error {
		if n <= 0 {
			return fmt.Errorf("goldfish: WithMinClients: need a positive count, got %d", n)
		}
		c.minClients = n
		return nil
	}
}

// WithClientFraction trains only a random fraction of clients each round
// (standard federated client sampling, McMahan et al.); 0 or 1 trains
// everyone. At least one client is always sampled.
func WithClientFraction(f float64) Option {
	return func(c *engineConfig) error {
		if f < 0 || f > 1 {
			return fmt.Errorf("goldfish: WithClientFraction: %g out of [0,1]", f)
		}
		c.fraction = f
		return nil
	}
}

// WithRoundTimeout bounds one round of local training; stragglers whose
// context expires are dropped for the round like crashed clients. 0 (the
// default) disables the bound.
func WithRoundTimeout(d time.Duration) Option {
	return func(c *engineConfig) error {
		if d < 0 {
			return fmt.Errorf("goldfish: WithRoundTimeout: negative timeout %v", d)
		}
		c.timeout = d
		return nil
	}
}

// WithSampleSeed drives the client-sampling randomness of
// WithClientFraction.
func WithSampleSeed(seed int64) Option {
	return func(c *engineConfig) error {
		c.sampleSeed = seed
		return nil
	}
}

// WithRoundHook installs a callback invoked after every aggregated round.
// The RoundStats carry a private copy of the global vector, so hooks may
// retain or mutate it freely.
func WithRoundHook(h func(RoundStats)) Option {
	return func(c *engineConfig) error {
		c.hook = h
		return nil
	}
}

// WithTransport replaces the default in-process transport that fans rounds
// out to the strategy's trainers — an advanced escape hatch for custom
// distribution layers. Dynamic membership (AddClient/RemoveClient) requires
// the default transport.
func WithTransport(t Transport) Option {
	return func(c *engineConfig) error {
		if t == nil {
			return fmt.Errorf("goldfish: WithTransport: nil transport")
		}
		c.transport = t
		return nil
	}
}

// Engine is a federated-unlearning run: a pluggable Unlearner strategy over
// the shared round engine, plus data bookkeeping from the dataset preset.
// Build one with New. An Engine is not safe for concurrent use; drive it
// from one goroutine.
type Engine struct {
	fed           *unlearn.Federation
	strategyName  string
	preset        Preset
	hasPreset     bool
	train, test   *Dataset
	parts         []*Dataset
	hook          func(RoundStats)
	defaultRounds int
}

// New builds a federated-unlearning engine from functional options. At
// minimum, pass WithDataset (or WithPreset) for a paper preset, or
// WithPartitions together with WithClientConfig for fully custom data:
//
//	e, err := goldfish.New(
//		goldfish.WithDataset("mnist", goldfish.ScaleTiny),
//		goldfish.WithUnlearner("retrain"),
//		goldfish.WithClients(4),
//	)
func New(opts ...Option) (*Engine, error) {
	cfg := engineConfig{seed: 0}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("goldfish: nil option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.seed == 0 {
		cfg.seed = 1
	}

	e := &Engine{strategyName: cfg.unlearner, hook: cfg.hook}

	// Resolve the preset, if any.
	switch {
	case cfg.preset != nil:
		e.preset, e.hasPreset = *cfg.preset, true
	case cfg.dataset != "":
		p, err := NewPresetWithArch(cfg.dataset, cfg.arch, cfg.scale, cfg.seed)
		if err != nil {
			return nil, err
		}
		e.preset, e.hasPreset = p, true
	case cfg.parts == nil:
		return nil, fmt.Errorf("goldfish: no data: pass WithDataset/WithPreset or WithPartitions")
	}

	// Resolve the client configuration.
	var clientCfg Config
	switch {
	case cfg.clientCfg != nil:
		clientCfg = *cfg.clientCfg
	case e.hasPreset:
		clientCfg = e.preset.ClientConfig()
	default:
		return nil, fmt.Errorf("goldfish: WithPartitions without a preset needs WithClientConfig")
	}

	// Materialize data and partitions.
	if e.hasPreset {
		train, test, err := e.preset.Generate()
		if err != nil {
			return nil, err
		}
		e.train, e.test = train, test
		e.defaultRounds = e.preset.Rounds
	}
	// Keep a private copy of the partition list: dynamic membership edits
	// it, and that must not alias a slice the caller still holds.
	if cfg.parts != nil {
		e.parts = append([]*Dataset(nil), cfg.parts...)
	}
	if e.parts == nil {
		clients := cfg.clients
		if clients <= 0 {
			clients = e.preset.Clients
		}
		parts, err := data.PartitionIID(e.train, clients, rand.New(rand.NewSource(cfg.seed*7717)))
		if err != nil {
			return nil, err
		}
		e.parts = parts
	} else if cfg.clients > 0 && cfg.clients != len(e.parts) {
		return nil, fmt.Errorf("goldfish: WithClients(%d) conflicts with %d explicit partitions",
			cfg.clients, len(e.parts))
	}

	// Resolve the unlearning strategy.
	strategy := cfg.strategy
	if strategy == nil {
		name := cfg.unlearner
		if name == "" {
			name = "goldfish"
		}
		s, err := unlearn.New(name)
		if err != nil {
			return nil, err
		}
		strategy = s
	}
	e.strategyName = strategy.Name()

	// The paper's adaptive aggregation needs a server-side test set; fall
	// back to the preset's test split when none was given.
	serverTest := cfg.serverTest
	if serverTest == nil {
		if _, adaptive := cfg.agg.(AdaptiveWeight); adaptive && e.test != nil {
			serverTest = e.test
		}
	}

	fedr, err := unlearn.NewFederation(unlearn.Config{
		Client:         clientCfg,
		Unlearner:      strategy,
		Aggregator:     cfg.agg,
		ServerTest:     serverTest,
		MinClients:     cfg.minClients,
		ClientFraction: cfg.fraction,
		RoundTimeout:   cfg.timeout,
		SampleSeed:     cfg.sampleSeed,
		Transport:      cfg.transport,
	}, e.parts)
	if err != nil {
		return nil, err
	}
	e.fed = fedr
	return e, nil
}

// Run executes n federation rounds (n <= 0 selects the preset's default
// round budget), invoking the WithRoundHook callback after each. It honours
// ctx cancellation.
func (e *Engine) Run(ctx context.Context, n int) error {
	if n <= 0 {
		n = e.defaultRounds
	}
	if n <= 0 {
		return fmt.Errorf("goldfish: no round budget: pass a positive round count or use a dataset preset")
	}
	return e.fed.Run(ctx, n, e.hook)
}

// RequestDeletion submits a deletion request for rows of a client's local
// dataset; the configured Unlearner decides how it is honoured on the next
// Run. clientID is the client's current position (as in Partitions()),
// which shifts down when an earlier participant is removed. Row indexing is
// strategy-specific: the "goldfish" strategy addresses the original dataset
// and rejects double removals, while the retrain baselines address the
// current post-removal view.
func (e *Engine) RequestDeletion(clientID int, rows []int) error {
	return e.fed.RequestDeletion(clientID, rows)
}

// RequestSampleDeletion submits a deletion request whose rows index the
// client's ORIGINAL dataset regardless of the active strategy's addressing:
// the federation tracks prior removals per participant and remaps indices
// for strategies that address the current post-removal view. This is the
// entry point schedule-driven callers (e.g. RunScenario) should use; rows
// already removed are rejected.
func (e *Engine) RequestSampleDeletion(clientID int, rows []int) error {
	return e.fed.RequestDeletionRows(clientID, rows)
}

// RequestClassDeletion submits a class-level deletion request: every
// remaining sample labelled class, across all participants, is removed. It
// returns the deleted original row indices keyed by client position.
func (e *Engine) RequestClassDeletion(class int) (map[int][]int, error) {
	return e.fed.RequestClassDeletion(class)
}

// RemainingRows returns the not-yet-deleted original row indices of a
// client's dataset.
func (e *Engine) RemainingRows(clientID int) []int {
	return e.fed.RemainingRows(clientID)
}

// RemainingRowsOfClass returns the not-yet-deleted original row indices of a
// client's samples labelled class.
func (e *Engine) RemainingRowsOfClass(clientID, class int) []int {
	return e.fed.RemainingRowsOfClass(clientID, class)
}

// AddClient registers a new participant holding the given local dataset and
// returns its lifetime-unique client ID. Only strategies with
// dynamic-membership support ("goldfish", "retrain", "fisher") accept it.
func (e *Engine) AddClient(ds *Dataset) (int, error) {
	id, err := e.fed.AddClient(ds)
	if err != nil {
		return 0, err
	}
	e.parts = append(e.parts, ds)
	return id, nil
}

// RemoveClient removes the participant at the given current position (the
// positions of later participants shift down by one). When unlearn is true
// the departure is treated as a deletion request for the client's entire
// remaining dataset.
func (e *Engine) RemoveClient(clientID int, unlearn bool) error {
	if err := e.fed.RemoveClient(clientID, unlearn); err != nil {
		return err
	}
	e.parts = append(e.parts[:clientID], e.parts[clientID+1:]...)
	return nil
}

// Strategy returns the active unlearning strategy's registry name.
func (e *Engine) Strategy() string { return e.strategyName }

// NumClients returns the number of participants.
func (e *Engine) NumClients() int { return e.fed.NumClients() }

// Client returns participant i, or nil when i is out of range or the
// strategy's participants are not Goldfish clients.
func (e *Engine) Client(i int) *Client { return e.fed.Client(i) }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.fed.Round() }

// Global returns a copy of the current global state vector.
func (e *Engine) Global() []float64 { return e.fed.Global() }

// GlobalNet returns a fresh network loaded with the current global state.
func (e *Engine) GlobalNet() (*Network, error) { return e.fed.GlobalNet() }

// TrainData returns the preset's generated training set (nil without a
// preset).
func (e *Engine) TrainData() *Dataset { return e.train }

// TestData returns the preset's generated test set (nil without a preset).
func (e *Engine) TestData() *Dataset { return e.test }

// Partitions returns the per-client datasets the engine trains on.
func (e *Engine) Partitions() []*Dataset { return e.parts }

// DefaultRounds returns the preset's round budget (0 without a preset).
func (e *Engine) DefaultRounds() int { return e.defaultRounds }

// TestAccuracy evaluates the current global model on ds; nil selects the
// preset's test set.
func (e *Engine) TestAccuracy(ds *Dataset) (float64, error) {
	if ds == nil {
		ds = e.test
	}
	if ds == nil {
		return 0, fmt.Errorf("goldfish: no test set: pass one or use a dataset preset")
	}
	return e.fed.TestAccuracy(ds)
}
